"""The production trap handlers.

Each handler follows the :mod:`repro.core.traps` contract —
``handler(machine, trap, report) -> bool`` — and runs in system mode
(zone checks suspended, every cycle it spends attributed to
``RunStats.recovery_cycles``).  A handler that returns ``True`` has
repaired the cause; the machine restarts the faulting instruction.

The three production handlers mirror what KCM's host runtime did:

- :class:`StackGrowthHandler` — a stack pointer crossed its zone limit;
  move the limit out (section 3.2.3: "The limits of the zones may be
  changed dynamically") under a :class:`GrowthPolicy` with a hard
  ceiling, refusing ever to overlap another zone;
- :class:`PageFaultHandler` — a missing translation; have the host map
  the page in and charge the VME round trip (sections 2.1, 3.2.5);
- :class:`HeapRecoveryHandler` — the global stack overflowed; run the
  compacting collector (:class:`repro.core.gc.HeapCompactor`) and
  retry, falling back to zone growth when collection frees too little
  — the SICStus-style GC-on-overflow discipline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.gc import CollectStats, HeapCompactor
from repro.core.tags import Zone, ZONE_GRANULE_WORDS
from repro.errors import PageFault, SpuriousTrap, StackOverflowTrap

#: zones whose limits a growth handler may move.
GROWABLE_ZONES = (Zone.GLOBAL, Zone.LOCAL, Zone.CONTROL, Zone.TRAIL)


def _granule_ceil(address: int) -> int:
    return -(-address // ZONE_GRANULE_WORDS) * ZONE_GRANULE_WORDS


@dataclass
class GrowthPolicy:
    """How far and how fast a zone may grow on overflow.

    ``factor`` scales the current zone size each time (doubling by
    default, so N overflows cost O(log N) growths); ``min_increment``
    guarantees progress on tiny zones; ``ceilings`` caps individual
    zones at an absolute ``max_address`` (the hard ceiling — beyond it
    the trap is fatal).  Whatever the policy asks for is additionally
    clamped so the zone never overlaps a neighbour
    (:meth:`repro.memory.zones.ZoneChecker.move_limits` enforces it).
    """

    factor: float = 2.0
    min_increment: int = ZONE_GRANULE_WORDS
    ceilings: Dict[Zone, int] = field(default_factory=dict)
    #: host round-trip cost charged per successful limit move.
    cycles_per_grow: int = 500


def grow_zone(machine, zone: Zone, needed_address: Optional[int],
              policy: GrowthPolicy) -> bool:
    """Grow ``zone`` per ``policy`` so ``needed_address`` (when known)
    becomes legal; returns False when no legal growth can cover it."""
    if zone not in GROWABLE_ZONES:
        return False
    zones = machine.memory.zones
    entry = zones.entries[zone]
    size = entry.max_address - entry.min_address
    target = entry.min_address + max(int(size * policy.factor),
                                     size + policy.min_increment)
    if needed_address is not None:
        target = max(target, needed_address + 1)
    cap = policy.ceilings.get(zone)
    if cap is not None:
        target = min(target, cap)
    target = _granule_ceil(target)
    # Never into a neighbour: clamp to the available headroom.
    room = zones.headroom(zone)
    max_legal = _granule_ceil(entry.max_address) + room
    target = min(target, max_legal)
    if target <= entry.max_address:
        return False
    if needed_address is not None and needed_address >= target:
        return False          # even the hard ceiling cannot cover it
    try:
        zones.move_limits(zone, entry.min_address, target)
    except ValueError:
        return False
    machine.cycles += policy.cycles_per_grow
    return True


class StackGrowthHandler:
    """Recover a :class:`StackOverflowTrap` by moving the zone limit."""

    def __init__(self, policy: Optional[GrowthPolicy] = None):
        self.policy = policy or GrowthPolicy()
        #: successful growths per zone (diagnostics).
        self.growths: Dict[Zone, int] = {}

    def __call__(self, machine, trap, report) -> bool:
        if not isinstance(trap, StackOverflowTrap) or trap.zone is None:
            return False
        if not grow_zone(machine, trap.zone, trap.address, self.policy):
            return False
        self.growths[trap.zone] = self.growths.get(trap.zone, 0) + 1
        return True


class PageFaultHandler:
    """Service a :class:`PageFault` by mapping the page in (the host
    paging server of section 2.1).  ``service_cycles`` overrides the
    memory system's configured host round-trip cost."""

    def __init__(self, service_cycles: Optional[int] = None):
        self.service_cycles = service_cycles
        #: pages mapped in by this handler (diagnostics).
        self.serviced = 0

    def __call__(self, machine, trap, report) -> bool:
        if not isinstance(trap, PageFault) or trap.virtual_page is None:
            return False
        try:
            cost = machine.memory.service_page_fault(
                trap.virtual_page, code_space=trap.code_space)
        except PageFault:
            return False      # physical memory exhausted: really fatal
        machine.cycles += (self.service_cycles
                           if self.service_cycles is not None else cost)
        self.serviced += 1
        return True


class HeapRecoveryHandler:
    """Recover a global-stack overflow by collecting garbage first.

    Runs the order-preserving compacting collector; when it frees at
    least ``min_freed_fraction`` of the heap *and* the heap top is back
    inside the zone, the faulting instruction simply retries.  When
    collection frees too little (the heap is genuinely live), falls
    back to zone growth under ``growth``.
    """

    def __init__(self, min_freed_fraction: float = 0.2,
                 growth: Optional[GrowthPolicy] = None):
        self.min_freed_fraction = min_freed_fraction
        self.growth = growth or GrowthPolicy()
        #: every collection this handler ran (diagnostics).
        self.collections: List[CollectStats] = []

    def __call__(self, machine, trap, report) -> bool:
        if not isinstance(trap, StackOverflowTrap) \
                or trap.zone is not Zone.GLOBAL:
            return False
        stats = HeapCompactor(machine).collect()
        machine.cycles += stats.heap_cells * HeapCompactor.CYCLES_PER_CELL
        self.collections.append(stats)
        entry = machine.memory.zones.entries[Zone.GLOBAL]
        if stats.freed_fraction >= self.min_freed_fraction \
                and entry.contains(machine.h):
            return True
        # Collection freed too little: the heap really is that big.
        return grow_zone(machine, Zone.GLOBAL, trap.address, self.growth)


class SpuriousTrapHandler:
    """Resume after a trap with no underlying fault (the injection
    harness raises these; real hardware has transient equivalents)."""

    def __init__(self):
        self.resumed = 0

    def __call__(self, machine, trap, report) -> bool:
        if not isinstance(trap, SpuriousTrap):
            return False
        self.resumed += 1
        return True


def install_default_recovery(machine,
                             growth: Optional[GrowthPolicy] = None,
                             heap_min_freed_fraction: float = 0.2,
                             page_faults: bool = True,
                             ) -> Dict[str, object]:
    """Arm ``machine`` with the production handler set; returns the
    handlers by name so callers can read their diagnostics.

    Registration order matters: the trap vector tries handlers
    most-recently-registered first, so the heap handler (GLOBAL-zone
    specific, registered last) shadows plain growth for heap overflows
    while other stacks still get plain growth.
    """
    vector = machine.trap_vector
    policy = growth or GrowthPolicy()
    stack_handler = StackGrowthHandler(policy)
    heap_handler = HeapRecoveryHandler(
        min_freed_fraction=heap_min_freed_fraction, growth=policy)
    spurious_handler = SpuriousTrapHandler()
    vector.register(StackOverflowTrap, stack_handler, "stack-growth")
    vector.register(StackOverflowTrap, heap_handler, "heap-gc")
    vector.register(SpuriousTrap, spurious_handler, "spurious-resume")
    handlers: Dict[str, object] = {
        "stack-growth": stack_handler,
        "heap-gc": heap_handler,
        "spurious-resume": spurious_handler,
    }
    if page_faults:
        page_handler = PageFaultHandler()
        vector.register(PageFault, page_handler, "page-service")
        handlers["page-service"] = page_handler
    return handlers
