"""Deterministic fault injection for the trap-and-recovery subsystem.

A :class:`FaultInjector` is seeded once and pre-computes a schedule of
fault events at chosen simulated-cycle counts; attached to a machine it
fires each event exactly when the cycle counter first reaches it, from
the machine's instruction-boundary hook.  The same seed against the
same program therefore produces the same faults at the same points —
which is what lets tests assert that a faulted run computes *identical
solutions* to a fault-free one.

Three fault kinds, one per recovery path:

- ``page-fault`` — a resident data page near the machine's working set
  (the pages under H, E and the trail top) loses its translation, as
  if the host paging server evicted it; the next miss on it raises a
  :class:`~repro.errors.PageFault` that the page-service handler must
  repair.  Attaching an injector with page-fault events switches the
  MMU out of implicit demand paging so the fault is actually delivered.
- ``zone-squeeze`` — a stack zone's upper limit is pulled down to the
  granule boundary above its current top, so the next push across it
  raises a :class:`~repro.errors.StackOverflowTrap` for the growth (or
  heap-GC) handler.
- ``spurious`` — a :class:`~repro.errors.SpuriousTrap` with no
  underlying fault is raised directly; recovery must restart the
  instruction with no visible effect.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.tags import Zone, ZONE_GRANULE_WORDS, page_number
from repro.errors import SpuriousTrap

#: event kinds in schedule order of precedence (stable tie-break).
KINDS = ("page-fault", "zone-squeeze", "spurious")


def _granule_ceil(address: int) -> int:
    return -(-address // ZONE_GRANULE_WORDS) * ZONE_GRANULE_WORDS


@dataclass
class InjectedFault:
    """One scheduled fault event."""

    cycle: int                 # fire when machine.cycles first reaches this
    kind: str                  # "page-fault" | "zone-squeeze" | "spurious"
    #: what was hit, filled in when fired (page number / zone name).
    detail: str = ""
    fired: bool = False
    #: False when the event found nothing to break (e.g. no resident
    #: page yet) and was skipped.
    effective: bool = field(default=False, repr=False)


class FaultInjector:
    """Seeded, pre-scheduled fault source for one machine run.

    ``horizon`` bounds the cycle counts the schedule draws from; events
    past the program's actual run length simply never fire.  Call
    :meth:`rewind` to replay the identical schedule on a fresh run.
    """

    def __init__(self, seed: int = 0,
                 page_faults: int = 0,
                 zone_squeezes: int = 0,
                 spurious: int = 0,
                 horizon: int = 100_000,
                 squeeze_zones: Sequence[Zone] = (Zone.GLOBAL, Zone.TRAIL)):
        self.seed = seed
        self.horizon = horizon
        self.squeeze_zones = tuple(squeeze_zones)
        rng = random.Random(seed)
        requests: List[Tuple[str, int]] = (
            [("page-fault", 0)] * page_faults
            + [("zone-squeeze", 0)] * zone_squeezes
            + [("spurious", 0)] * spurious)
        events: List[InjectedFault] = []
        for kind, _ in requests:
            events.append(InjectedFault(cycle=rng.randrange(1, horizon),
                                        kind=kind))
        # Stable order: by cycle, ties broken by kind precedence, so the
        # schedule is a pure function of the constructor arguments.
        events.sort(key=lambda ev: (ev.cycle, KINDS.index(ev.kind)))
        self.events = events
        self._rng = rng
        # Fire-time draws (victim pages, squeeze zones) continue from
        # the post-schedule rng state; rewind must restart from here,
        # not from the bare seed, or replays diverge.
        self._rng_state = rng.getstate()
        self._next = 0

    # -- lifecycle -------------------------------------------------------------

    def attach(self, machine) -> "FaultInjector":
        """Install on ``machine`` (switches the machine into the
        recovering run loop; with page-fault events scheduled, also
        turns implicit demand paging off so the faults are real)."""
        machine.injector = self
        if any(ev.kind == "page-fault" for ev in self.events):
            mmu = machine.memory.mmu
            # The host wires the initial working set before handing the
            # machine over to explicit paging (section 2.1) — the run
            # bootstrap writes the first environment outside the
            # recovering loop, where a fault has no handler yet.
            for pointer in self._initial_working_set(machine):
                vpage = page_number(pointer)
                if not mmu.is_mapped(vpage):
                    mmu.map_page(vpage)
            mmu.demand_paging = False
        return self

    @staticmethod
    def _initial_working_set(machine) -> List[int]:
        """Addresses whose pages must be resident before the run
        bootstrap: every stack base plus the current stack pointers."""
        pointers = list(machine._stack_base.values())
        pointers += [machine.h, machine.e, machine.b, machine.trail.top]
        return [pointer for pointer in pointers if pointer > 0]

    def rewind(self) -> None:
        """Reset so the identical schedule replays on the next run."""
        for event in self.events:
            event.fired = False
            event.effective = False
            event.detail = ""
        self._rng.setstate(self._rng_state)
        self._next = 0

    # -- checkpointable progress ------------------------------------------------

    def runtime_state(self) -> dict:
        """The injector's mid-run progress as a picklable dict, so a
        machine checkpoint can resume an injected run on a fresh worker
        without re-firing already-delivered events (the schedule itself
        is rebuilt deterministically from the constructor arguments)."""
        return {
            "next": self._next,
            "rng": self._rng.getstate(),
            "events": [(event.fired, event.effective, event.detail)
                       for event in self.events],
        }

    def set_runtime_state(self, state: dict) -> None:
        """Adopt :meth:`runtime_state` progress captured by an injector
        built with the same constructor arguments."""
        events = state["events"]
        if len(events) != len(self.events):
            raise ValueError("runtime state is from a different schedule")
        self._next = state["next"]
        self._rng.setstate(state["rng"])
        for event, (fired, effective, detail) in zip(self.events, events):
            event.fired = fired
            event.effective = effective
            event.detail = detail

    @property
    def fired(self) -> List[InjectedFault]:
        """Events delivered so far."""
        return [ev for ev in self.events if ev.fired]

    # -- the machine-facing hook -----------------------------------------------

    def before_instruction(self, machine) -> None:
        """Called by the run loop at every instruction boundary; fires
        every event whose cycle count has been reached.  May raise a
        trap (spurious events) — the loop treats it like any other
        instruction-boundary trap."""
        while self._next < len(self.events) \
                and self.events[self._next].cycle <= machine.cycles:
            event = self.events[self._next]
            self._next += 1          # advance first: replay must not re-fire
            event.fired = True
            self._fire(machine, event)

    def _fire(self, machine, event: InjectedFault) -> None:
        machine.stats.faults_injected += 1
        if event.kind == "page-fault":
            victim = self._pick_victim_page(machine)
            if victim is None:
                event.detail = "no resident page"
                return
            machine.memory.mmu.unmap_page(victim)
            event.detail = f"page {victim}"
            event.effective = True
        elif event.kind == "zone-squeeze":
            zone = self.squeeze_zones[
                self._rng.randrange(len(self.squeeze_zones))]
            entry = machine.memory.zones.entries[zone]
            top = self._zone_top(machine, zone)
            # Pull the limit down to the granule boundary just above the
            # current top: everything in use stays legal, the next push
            # across the boundary traps.
            new_max = max(entry.min_address + ZONE_GRANULE_WORDS,
                          _granule_ceil(top + 1))
            if new_max >= entry.max_address:
                event.detail = f"{zone.name} already at {new_max:#x}"
                return
            machine.memory.zones.set_limits(zone, entry.min_address, new_max)
            event.detail = f"{zone.name} max -> {new_max:#x}"
            event.effective = True
        else:
            event.detail = f"spurious at cycle {machine.cycles}"
            event.effective = True
            trap = SpuriousTrap(
                f"injected spurious trap at cycle {machine.cycles}")
            trap.injected = True
            raise trap

    # -- victim selection ------------------------------------------------------

    def _pick_victim_page(self, machine) -> Optional[int]:
        """A resident data page in the working set (deterministic)."""
        mmu = machine.memory.mmu
        hot = sorted({page_number(pointer)
                      for pointer in (machine.h, machine.e, machine.b,
                                      machine.trail.top)
                      if pointer > 0})
        candidates = [vpage for vpage in hot if mmu.is_mapped(vpage)]
        if not candidates:
            candidates = mmu.resident_pages()
        if not candidates:
            return None
        return candidates[self._rng.randrange(len(candidates))]

    @staticmethod
    def _zone_top(machine, zone: Zone) -> int:
        """The zone's current high-water pointer."""
        if zone is Zone.GLOBAL:
            return machine.h
        if zone is Zone.TRAIL:
            return machine.trail.top
        if zone is Zone.LOCAL:
            return max(machine.e, machine._stack_base[Zone.LOCAL])
        if zone is Zone.CONTROL:
            return max(machine.b, machine._stack_base[Zone.CONTROL])
        return machine.memory.zones.entries[zone].min_address
