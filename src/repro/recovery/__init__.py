"""Trap recovery: the software side of KCM's trap-and-resume design.

The hardware raises traps (zone check, MMU); the host-resident runtime
system repairs the cause and restarts the faulting instruction
(sections 2.1, 2.2, 3.2.3, 3.2.5).  This package is that runtime
system for the simulator:

- :mod:`repro.recovery.handlers` — the three production handlers
  (stack growth with a configurable policy, page-fault servicing,
  heap overflow = garbage collection with growth fallback) and
  :func:`install_default_recovery` to arm a machine with all of them;
- :mod:`repro.recovery.inject` — the deterministic fault-injection
  harness: seeded transient page faults, zone-limit squeezes and
  spurious traps at chosen cycle counts, so every recovery path can be
  exercised reproducibly by tests and benchmarks.

The dispatch layer itself lives in :mod:`repro.core.traps`; the
handler contract and policies are documented in ``docs/TRAPS.md``.
"""

from repro.recovery.handlers import (
    GrowthPolicy, HeapRecoveryHandler, PageFaultHandler,
    StackGrowthHandler, SpuriousTrapHandler, grow_zone,
    install_default_recovery,
)
from repro.recovery.inject import FaultInjector, InjectedFault

__all__ = [
    "GrowthPolicy", "HeapRecoveryHandler", "PageFaultHandler",
    "StackGrowthHandler", "SpuriousTrapHandler", "grow_zone",
    "install_default_recovery",
    "FaultInjector", "InjectedFault",
]
