"""Baseline machine models for the paper's comparisons (Tables 1-4).

- :mod:`repro.baselines.plm` — the Berkeley PLM: execution config
  (Table 2) and static code-size model with cdr-coding (Table 1);
- :mod:`repro.baselines.spur` — SPUR RISC expansion model (Table 1);
- :mod:`repro.baselines.quintus` — Quintus 2.0 on a SUN-3/280
  (Table 3).

All execution baselines reuse the same functional simulator with
different cost models and feature switches, so wins and losses come
out of real runs of identical compiled programs.
"""

from repro.baselines.plm import (
    CodeSize, PLMCodeModel, plm_cost_model, plm_features, plm_machine,
)
from repro.baselines.quintus import (
    quintus_cost_model, quintus_features, quintus_machine,
)
from repro.baselines.spur import SPURCodeModel

__all__ = [
    "CodeSize", "PLMCodeModel", "plm_cost_model", "plm_features",
    "plm_machine", "quintus_cost_model", "quintus_features",
    "quintus_machine", "SPURCodeModel",
]
