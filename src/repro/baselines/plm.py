"""The Berkeley PLM baseline (Tables 1 and 2).

The PLM (Dobry et al., ISCA 1985) was the first WAM-in-hardware design:
a microcoded engine executing byte-coded WAM instructions at a 100 ns
cycle, with eager choice-point creation (no shallow-backtracking
support) and cdr-coded lists.  The machine died with its project, so —
per the substitution rule in DESIGN.md — we rebuild both of its roles
here:

**Execution model** (:func:`plm_machine`): the same functional
simulator configured as the PLM — shallow backtracking and MWAC off,
100 ns cycle, microcode dispatch overhead per instruction, slower
choice-point handling, software integer multiply/divide.  Table 2's
PLM column then comes out of real runs of the same compiled programs.

**Static code-size model** (:class:`PLMCodeModel`): re-costs our
compiled code in PLM terms — byte-coded instructions (the paper puts
the average PLM instruction at 3.3 bytes) and cdr-coding, which lets
the PLM "compile a statically known list cell in one instruction
rather than two in KCM" (section 4.1): every UNIFY following a
GET_LIST/PUT_LIST collapses into its predecessor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.costs import CostModel, Features
from repro.core.machine import Machine
from repro.core.opcodes import ArithOp, Op
from repro.core.symbols import SymbolTable
from repro.compiler.linker import LinkedImage

PLM_CYCLE_SECONDS = 100e-9          # 10 MHz


def plm_cost_model() -> CostModel:
    """PLM timing: everything microcoded and a bit slower.

    The per-parameter choices follow the PLM's published character:
    byte-code fetch/decode costs on every instruction, multi-cycle
    choice-point push/pop, no single-cycle double moves.
    """
    costs = CostModel(cycle_seconds=PLM_CYCLE_SECONDS)
    costs.dispatch_overhead = 1          # byte-stream decode per instr
    costs.base = dict(costs.base)
    costs.base[Op.CALL] = 4
    costs.base[Op.EXECUTE] = 4
    costs.base[Op.PROCEED] = 4
    costs.base[Op.TRY_ME_ELSE] = 2       # plus eager CP creation below
    costs.base[Op.RETRY_ME_ELSE] = 2
    costs.base[Op.TRY] = 3
    costs.base[Op.RETRY] = 3
    costs.base[Op.SWITCH_ON_TERM] = 4    # no MWAC: serial type tests
    costs.base[Op.SWITCH_ON_CONSTANT] = 6
    costs.base[Op.SWITCH_ON_STRUCTURE] = 6
    costs.cp_create_base = 6
    costs.cp_restore_base = 6
    costs.fail_deep_branch = 4
    costs.trail_check = 2                # serial comparisons
    costs.arith_dispatch = 2
    costs.arith_int = dict(costs.arith_int)
    costs.arith_int[ArithOp.MUL] = 40    # software shift-add multiply
    costs.arith_int[ArithOp.DIV] = 60
    costs.arith_int[ArithOp.IDIV] = 60
    costs.arith_int[ArithOp.MOD] = 60
    return costs


def plm_features() -> Features:
    """PLM architecture: eager choice points, no MWAC, serial trail."""
    return Features(shallow_backtracking=False, mwac=False,
                    parallel_trail=False, sectioned_cache=False)


def plm_machine(symbols: Optional[SymbolTable] = None) -> Machine:
    """A machine configured as the PLM."""
    return Machine(symbols=symbols or SymbolTable(),
                   costs=plm_cost_model(), features=plm_features())


# ---------------------------------------------------------------------------
# static code size model
# ---------------------------------------------------------------------------

#: Bytes per PLM instruction by KCM opcode family.  The PLM byte-codes
#: its WAM: one opcode byte plus compact operand bytes; the paper's
#: measured average is 3.3 bytes/instruction.
_PLM_BYTES: Dict[Op, int] = {
    Op.CALL: 5, Op.EXECUTE: 5, Op.PROCEED: 1,
    Op.ALLOCATE: 2, Op.DEALLOCATE: 1,
    Op.TRY_ME_ELSE: 5, Op.RETRY_ME_ELSE: 5, Op.TRUST_ME: 1,
    Op.TRY: 5, Op.RETRY: 5, Op.TRUST: 5,
    Op.NECK: 1, Op.NECK_CUT: 1, Op.CUT: 1, Op.CUT_Y: 2, Op.GET_LEVEL: 2,
    Op.JUMP: 5, Op.FAIL: 1, Op.HALT: 1,
    Op.SWITCH_ON_TERM: 9,                 # three 24-bit targets
    Op.SWITCH_ON_CONSTANT: 5,             # plus table entries, added below
    Op.SWITCH_ON_STRUCTURE: 5,
    Op.GET_X_VARIABLE: 3, Op.GET_Y_VARIABLE: 3,
    Op.GET_X_VALUE: 3, Op.GET_Y_VALUE: 3,
    Op.GET_CONSTANT: 5, Op.GET_NIL: 2, Op.GET_LIST: 2,
    Op.GET_STRUCTURE: 6,
    Op.PUT_X_VARIABLE: 3, Op.PUT_Y_VARIABLE: 3,
    Op.PUT_X_VALUE: 3, Op.PUT_Y_VALUE: 3, Op.PUT_UNSAFE_VALUE: 3,
    Op.PUT_CONSTANT: 5, Op.PUT_NIL: 2, Op.PUT_LIST: 2,
    Op.PUT_STRUCTURE: 6,
    Op.UNIFY_X_VARIABLE: 2, Op.UNIFY_Y_VARIABLE: 2,
    Op.UNIFY_X_VALUE: 2, Op.UNIFY_Y_VALUE: 2,
    Op.UNIFY_X_LOCAL_VALUE: 2, Op.UNIFY_Y_LOCAL_VALUE: 2,
    Op.UNIFY_CONSTANT: 5, Op.UNIFY_NIL: 1, Op.UNIFY_VOID: 2,
    Op.MOVE2: 3,                          # two PLM moves... see below
    Op.ARITH: 4, Op.TEST: 4, Op.GEN_UNIFY: 3,
    Op.ESCAPE: 3,
}

#: UNIFY opcodes that cdr-coding folds into the preceding
#: GET_LIST/PUT_LIST/UNIFY chain when the cell is statically known.
_FOLDABLE_UNIFY = frozenset({
    Op.UNIFY_CONSTANT, Op.UNIFY_NIL,
})


@dataclass
class CodeSize:
    """Instruction and byte counts for one program."""

    instructions: int
    bytes: int


class PLMCodeModel:
    """Re-cost a linked KCM image in PLM instructions and bytes."""

    def measure(self, image: LinkedImage, source: str,
                query: str) -> CodeSize:
        """PLM static size for the same program + driver code that
        Table 1 counts for KCM, under the PLM recoding rules."""
        from repro.baselines.codewalk import program_instruction_streams

        instructions = 0
        total_bytes = 0
        for items in program_instruction_streams(source, query):
            previous_op = None
            for item in items:
                op = item.op
                # cdr-coding: a constant-cell UNIFY after a list
                # instruction merges into it (one PLM instruction for a
                # statically known list cell instead of two).
                if (op in _FOLDABLE_UNIFY
                        and previous_op in (Op.GET_LIST, Op.PUT_LIST,
                                            Op.UNIFY_CONSTANT,
                                            Op.UNIFY_NIL)):
                    total_bytes += 1        # the folded cell still
                    previous_op = op        # occupies a tagged byte
                    continue
                # A KCM MOVE2 is two PLM moves.
                if op is Op.MOVE2:
                    instructions += 2
                    total_bytes += 2 * 3
                    previous_op = op
                    continue
                instructions += 1
                total_bytes += _PLM_BYTES[op]
                if op in (Op.SWITCH_ON_CONSTANT, Op.SWITCH_ON_STRUCTURE):
                    total_bytes += 5 * len(item.a)
                previous_op = op
        return CodeSize(instructions=instructions, bytes=total_bytes)
