"""The Quintus Prolog 2.0 / SUN-3/280 baseline (Table 3).

Quintus 2.0 was the best commercial system of the day: a carefully
hand-tuned WAM *emulator* in 68020 assembly running on a SUN-3/280
(25 MHz M68020, 20 MHz FPU, 16 MB).  Being software, every abstract
instruction pays emulator dispatch (fetch byte-code, decode, indirect
jump) on top of its work, choice points are full memory structures,
and there is no shallow-backtracking, MWAC or trail hardware — those
are exactly the deltas the paper credits for KCM's 5–10x advantage,
with the lowest ratios on deterministic programs and the highest where
execution backtracks (section 4.2).

The model: the same functional simulator with all KCM special units
off, a 40 ns cycle (25 MHz), per-instruction emulation overhead, and
68020-realistic arithmetic/choice-point costs.  Calibrated against
Table 3's published ratios (average 7.85, range 5.08–10.17).
"""

from __future__ import annotations

from typing import Optional

from repro.core.costs import CostModel, Features
from repro.core.machine import Machine
from repro.core.opcodes import ArithOp, Op
from repro.core.symbols import SymbolTable

QUINTUS_CYCLE_SECONDS = 40e-9       # 25 MHz M68020


def quintus_cost_model() -> CostModel:
    """Emulated-WAM timing on the 68020."""
    costs = CostModel(cycle_seconds=QUINTUS_CYCLE_SECONDS)
    #: byte-code fetch + decode + computed jump per abstract instruction.
    costs.dispatch_overhead = 9
    costs.base = dict(costs.base)
    costs.base[Op.CALL] = 10
    costs.base[Op.EXECUTE] = 8
    costs.base[Op.PROCEED] = 8
    costs.base[Op.ALLOCATE] = 8
    costs.base[Op.DEALLOCATE] = 6
    costs.base[Op.SWITCH_ON_TERM] = 8
    costs.base[Op.SWITCH_ON_CONSTANT] = 14
    costs.base[Op.SWITCH_ON_STRUCTURE] = 14
    costs.base[Op.GET_LIST] = 6
    costs.base[Op.GET_STRUCTURE] = 8
    costs.base[Op.ESCAPE] = 20
    costs.deref_per_link = 4            # load, tag mask, compare, loop
    costs.trail_check = 4               # serial compares in software
    costs.trail_push = 4
    costs.bind = 3
    costs.heap_push = 2
    costs.base[Op.TRY_ME_ELSE] = 8
    costs.base[Op.RETRY_ME_ELSE] = 8
    costs.base[Op.TRUST_ME] = 8
    costs.base[Op.TRY] = 10
    costs.base[Op.RETRY] = 10
    costs.base[Op.TRUST] = 10
    costs.cp_create_base = 40
    costs.cp_save_per_reg = 4
    costs.cp_restore_base = 70
    costs.cp_restore_per_reg = 4
    costs.fail_deep_branch = 40
    costs.unify_per_cell = 8
    costs.trail_unwind_per_entry = 4
    costs.indirect_call = 20
    costs.write_builtin = 60
    costs.escape_per_arg = 4
    # is/2 in an emulator: box/unbox tagged numbers, dispatch on the
    # operator and the operand types, call the C arithmetic routine.
    costs.arith_dispatch = 150
    costs.test_dispatch = 40
    costs.arith_int = dict(costs.arith_int)
    costs.arith_int[ArithOp.MUL] = 45   # MULS.L plus overflow checks
    costs.arith_int[ArithOp.DIV] = 110  # DIVS.L plus checks
    costs.arith_int[ArithOp.IDIV] = 110
    costs.arith_int[ArithOp.MOD] = 110
    return costs


def quintus_features() -> Features:
    """No KCM special units, obviously."""
    return Features(shallow_backtracking=False, mwac=False,
                    parallel_trail=False, sectioned_cache=False,
                    zone_check=False)


def quintus_machine(symbols: Optional[SymbolTable] = None) -> Machine:
    """A machine configured as Quintus 2.0 on a SUN-3/280."""
    return Machine(symbols=symbols or SymbolTable(),
                   costs=quintus_cost_model(),
                   features=quintus_features())
