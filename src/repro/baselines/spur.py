"""The SPUR baseline (Table 1).

SPUR was Berkeley's "general-purpose RISC architecture that supports
tagged data" (Hill et al., 1986).  Running Prolog on it means macro-
expanding each WAM operation into a sequence of simple 32-bit RISC
instructions — the ASPLOS-II study the paper cites (Borriello et al.,
"RISCs vs. CISCs for Prolog") measured SPUR code at roughly 13.6x the
KCM instruction count and 6.4x the bytes.

This model re-costs our compiled code the same way: a per-opcode
expansion table estimating how many SPUR instructions each WAM
instruction macro-expands to (tag manipulation is cheap on SPUR — it
has tagged loads — but control, dereferencing, trail checks and
multi-way dispatch are all explicit instruction sequences).  Every
SPUR instruction is 4 bytes.
"""

from __future__ import annotations

from typing import Dict

from repro.baselines.plm import CodeSize
from repro.core.opcodes import Op

#: SPUR instructions per KCM instruction.  Derived from the shape of
#: open-coded WAM operations on a load/store RISC: a get_list is a tag
#: check, a bounds check, possibly a dereference loop body, a trail
#: check and the S-pointer setup; a call is argument-save plus jump;
#: switch instructions become compare/branch trees.
_SPUR_EXPANSION: Dict[Op, int] = {
    Op.CALL: 6, Op.EXECUTE: 4, Op.PROCEED: 3,
    Op.ALLOCATE: 8, Op.DEALLOCATE: 5,
    Op.TRY_ME_ELSE: 22, Op.RETRY_ME_ELSE: 14, Op.TRUST_ME: 12,
    Op.TRY: 22, Op.RETRY: 14, Op.TRUST: 12,
    Op.NECK: 4, Op.NECK_CUT: 6, Op.CUT: 8, Op.CUT_Y: 10, Op.GET_LEVEL: 3,
    Op.JUMP: 1, Op.FAIL: 8, Op.HALT: 1,
    Op.SWITCH_ON_TERM: 10, Op.SWITCH_ON_CONSTANT: 16,
    Op.SWITCH_ON_STRUCTURE: 16,
    Op.GET_X_VARIABLE: 1, Op.GET_Y_VARIABLE: 2,
    Op.GET_X_VALUE: 18, Op.GET_Y_VALUE: 19,
    Op.GET_CONSTANT: 14, Op.GET_NIL: 14, Op.GET_LIST: 16,
    Op.GET_STRUCTURE: 20,
    Op.PUT_X_VARIABLE: 5, Op.PUT_Y_VARIABLE: 4,
    Op.PUT_X_VALUE: 1, Op.PUT_Y_VALUE: 2, Op.PUT_UNSAFE_VALUE: 12,
    Op.PUT_CONSTANT: 2, Op.PUT_NIL: 2, Op.PUT_LIST: 3,
    Op.PUT_STRUCTURE: 5,
    Op.UNIFY_X_VARIABLE: 6, Op.UNIFY_Y_VARIABLE: 7,
    Op.UNIFY_X_VALUE: 20, Op.UNIFY_Y_VALUE: 21,
    Op.UNIFY_X_LOCAL_VALUE: 22, Op.UNIFY_Y_LOCAL_VALUE: 23,
    Op.UNIFY_CONSTANT: 16, Op.UNIFY_NIL: 16, Op.UNIFY_VOID: 5,
    Op.MOVE2: 2,
    Op.ARITH: 8, Op.TEST: 10, Op.GEN_UNIFY: 25,
    Op.ESCAPE: 6,
}

SPUR_INSTRUCTION_BYTES = 4

#: Global expansion calibration.  The per-opcode table above captures
#: the *relative* expansion between WAM operations; ASPLOS-II's measured
#: totals (13.6x KCM instructions on this suite) also include the
#: inlined dereference loops, overflow checks and tag-repair sequences
#: that a per-opcode table underestimates.  This factor aligns the
#: model's totals with the published measurements.
SPUR_CALIBRATION = 1.45


class SPURCodeModel:
    """Re-cost a program's compiled predicates in SPUR terms."""

    def measure(self, source: str, query: str = "true") -> CodeSize:
        """SPUR static size for the same program + driver code that
        Table 1 counts for KCM."""
        from repro.baselines.codewalk import program_instruction_streams

        instructions = 0
        for items in program_instruction_streams(source, query):
            for item in items:
                instructions += _SPUR_EXPANSION[item.op]
                if item.op in (Op.SWITCH_ON_CONSTANT,
                               Op.SWITCH_ON_STRUCTURE):
                    # Each hash-table entry is a compare+branch pair.
                    instructions += 2 * len(item.a)
        instructions = round(instructions * SPUR_CALIBRATION)
        return CodeSize(instructions=instructions,
                        bytes=SPUR_INSTRUCTION_BYTES * instructions)
