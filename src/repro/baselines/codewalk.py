"""Shared helper: compiled item streams for a benchmark program.

The three static-size models (KCM itself, PLM, SPUR) must count the
same code: every program predicate plus the driver (query) clause,
excluding the runtime library.  This walks the same compiler pipeline
the linker uses and yields the instruction items per predicate.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.compiler.indexing import compile_predicate
from repro.compiler.linker import Linker
from repro.compiler.normalize import group_program, normalize_program
from repro.core.instruction import Instruction
from repro.core.symbols import SymbolTable
from repro.prolog.parser import parse_program


def program_instruction_streams(source: str, query: str
                                ) -> Iterator[List[Instruction]]:
    """Yield the instruction list of each program predicate (program
    clauses, generated control predicates, and the driver clause)."""
    symbols = SymbolTable()
    program = normalize_program(parse_program(source))
    query_clause, _ = Linker(symbols=symbols)._query_clause(query, program)
    groups = group_program(program)
    for (name, arity), clauses in groups.items():
        code = compile_predicate(name, arity, clauses, symbols)
        yield [item for item in code.items if isinstance(item, Instruction)]
    query_code = compile_predicate("$query", 0, [query_clause], symbols)
    yield [item for item in query_code.items
           if isinstance(item, Instruction)]
