#!/usr/bin/env python3
"""Quickstart: compile and run Prolog on the simulated KCM.

Covers the one-call API (`run_query`), solutions, and the performance
counters the paper's evaluation is built on (cycles at 80 ns,
inferences, Klips).

Run:  python examples/quickstart.py
"""

from repro import run_query, term_to_text

PROGRAM = """
% The classic list library.
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).

member(X, [X|_]).
member(X, [_|T]) :- member(X, T).

% A little family database.
parent(tom, bob).      parent(tom, liz).
parent(bob, ann).      parent(bob, pat).
grandparent(G, C) :- parent(G, P), parent(P, C).
"""


def main() -> None:
    # First solution of a deterministic query.
    result = run_query(PROGRAM, "append([1,2,3], [4,5], Xs)")
    print("append([1,2,3], [4,5], Xs)  ->", result.bindings_text())

    # All solutions through backtracking.
    result = run_query(PROGRAM, "grandparent(tom, Who)",
                       all_solutions=True)
    print("grandchildren of tom       ->",
          [term_to_text(s["Who"]) for s in result.solutions])

    # Running a list split backwards: the same append, used to generate.
    result = run_query(PROGRAM, "append(A, B, [x, y, z])",
                       all_solutions=True)
    for solution in result.solutions:
        print("   split:", term_to_text(solution["A"]), "+",
              term_to_text(solution["B"]))

    # The machine's performance counters (the paper's metrics).
    result = run_query(PROGRAM, "append([1,2,3,4,5,6,7,8,9,10], [], R)")
    stats = result.stats
    print(f"\nperformance: {stats.inferences} inferences in "
          f"{stats.cycles} cycles "
          f"({result.milliseconds * 1000:.1f} microseconds at 80 ns)")
    print(f"  = {result.klips:.0f} Klips "
          f"(kilo logical inferences per second)")
    print(f"  shallow fails {stats.shallow_fails}, "
          f"deep fails {stats.deep_fails}, "
          f"choice points created {stats.choice_points_created}")


if __name__ == "__main__":
    main()
