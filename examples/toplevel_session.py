#!/usr/bin/env python3
"""An interactive-style toplevel session on the simulated KCM.

Demonstrates the pieces the paper's "complete Sepia environment"
(section 5) is made of: incremental compilation written through the
code cache (section 3.2.1), the Prolog-level monitor, the cycle
profiler, and the GC liveness snapshot driven by the zone-monitoring
trigger (section 3.2.3).

Run:  python examples/toplevel_session.py
"""

from repro import Machine, SymbolTable
from repro.api import compile_and_load
from repro.compiler.incremental import IncrementalLoader
from repro.core.gc import HeapMarker, should_collect
from repro.core.monitor import CycleProfiler, PortTracer, attach
from repro.prolog.writer import term_to_text


def consult_and_ask(loader, machine, text, query):
    if text:
        loaded = loader.add_program(text)
        print(f"% consulted {', '.join(f'{n}/{a}' for n, a in loaded)} "
              f"({loader.code_write_cycles} code-cache write cycles "
              f"so far)")
    entry, names = loader.query(query)
    machine.run(entry, collect_all=True, answer_names=names)
    for solution in machine.solutions:
        bindings = ", ".join(f"{k} = {term_to_text(v)}"
                             for k, v in solution.items()) or "yes"
        print(f"?- {query}.\n   {bindings}")
    if not machine.solutions:
        print(f"?- {query}.\n   no")


def main() -> None:
    machine = compile_and_load("library_loaded.", "library_loaded")
    loader = IncrementalLoader(machine)

    print("=== incremental consulting (section 3.2.1) ===")
    consult_and_ask(loader, machine, """
    edge(a, b). edge(b, c). edge(c, d). edge(b, d).
    path(X, X, [X]).
    path(X, Z, [X|P]) :- edge(X, Y), path(Y, Z, P).
    """, "path(a, d, P)")

    consult_and_ask(loader, machine, """
    cost([_], 0).
    cost([_, Y|T], C) :- cost([Y|T], C0), C is C0 + 1.
    """, "path(a, d, P), cost(P, Hops)")

    print("\n=== the Prolog-level monitor (Byrd ports) ===")
    tracer = PortTracer(limit=30)
    attach(machine, tracer)
    entry, names = loader.query("path(a, c, P)")
    machine.run(entry, answer_names=names)
    print(tracer.render())
    machine.tracer = None

    print("\n=== cycle profile ===")
    profiler = CycleProfiler()
    attach(machine, profiler)
    entry, names = loader.query("path(a, d, P), path(a, c, Q)")
    machine.run(entry, answer_names=names)
    print(profiler.report(top=5))
    machine.tracer = None

    print("\n=== heap liveness (the GC bits at work) ===")
    marker = HeapMarker(machine)
    stats = marker.collect_statistics()
    print(f"heap: {stats.heap_cells} cells, {stats.live_cells} live "
          f"({100 * stats.live_fraction:.0f}%), "
          f"{stats.dead_cells} collectable")
    print(f"zone-monitoring trigger (90% threshold): "
          f"{'collect now' if should_collect(machine) else 'no need'}")


if __name__ == "__main__":
    main()
