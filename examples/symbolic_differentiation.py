#!/usr/bin/env python3
"""Symbolic differentiation: the paper's deriv benchmark family.

times10, divide10, log10 and ops8 all run Warren's `d/3` differentiator
over different expressions.  This example differentiates a few
expressions, prints the symbolic results, and reproduces the paper's
observation that these programs are structure-building heavy (watch
the heap writes and the cut behaviour: every `d/3` clause commits with
a neck cut, so the whole run creates no choice points at all).

Run:  python examples/symbolic_differentiation.py
"""

from repro import run_query, term_to_text
from repro.bench.programs import DERIV


EXPRESSIONS = [
    "x + 1",
    "x * x",
    "(x + 1) * (x + 2)",
    "x ^ 3",
    "log(x * x)",
    "exp(x) * log(x)",
    "((x * x) * x) * x",
]


def main() -> None:
    for expression in EXPRESSIONS:
        result = run_query(DERIV, f"d({expression}, x, D)")
        stats = result.stats
        print(f"d/dx {expression}")
        print(f"   = {term_to_text(result.solutions[0]['D'])}")
        print(f"     [{stats.inferences} inferences, {stats.cycles} "
              f"cycles, {stats.choice_points_created} choice points, "
              f"{stats.data_writes} heap/stack writes]\n")

    # The full times10 benchmark (paper Table 3: 20 inferences, 247
    # Klips -- structure building keeps cycles-per-inference high).
    from repro.bench.programs import DERIV_TIMES10
    result = run_query(DERIV_TIMES10, "times10(D)")
    print("times10 benchmark:",
          f"{result.stats.inferences} inferences,",
          f"{result.milliseconds:.3f} ms,",
          f"{result.klips:.0f} Klips")
    print("derivative size:",
          len(term_to_text(result.solutions[0]["D"])), "characters")


if __name__ == "__main__":
    main()
