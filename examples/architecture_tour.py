#!/usr/bin/env python3
"""A tour of the simulated KCM architecture.

Walks through the machine's special units with live demonstrations:

1. the 64-bit tagged word and address formats (figures 2 and 7),
2. shallow backtracking: shadow registers vs choice points (s. 3.1.5),
3. the zone check trapping a wild address (section 3.2.3),
4. the zone-sectioned data cache vs a plain direct-mapped one (3.2.4),
5. the compiled code itself, through the disassembler.

Run:  python examples/architecture_tour.py
"""

from repro import Machine, run_query
from repro.bench.figures import figure2, figure7, render_cache_experiment
from repro.core.instruction import disassemble_range
from repro.core.tags import Type, Zone
from repro.core.word import make_float
from repro.errors import ZoneTrap


def banner(text):
    print("\n" + "=" * 64)
    print(text)
    print("=" * 64)


def main() -> None:
    banner("1. Word and address formats (from the live constants)")
    print(figure2())
    print()
    print(figure7())

    banner("2. Shallow backtracking (section 3.1.5)")
    program = """
    grade(S, fail)  :- S < 40.
    grade(S, pass)  :- S >= 40, S < 70.
    grade(S, merit) :- S >= 70.
    """
    result = run_query(program, "grade(85, G)")
    stats = result.stats
    print(f"grade(85, G) -> {result.bindings_text()}")
    print(f"  guard failures handled shallow: {stats.shallow_fails}")
    print(f"  choice points created:          "
          f"{stats.choice_points_created}")
    print("  Two clauses were rejected by their guards; each rejection")
    print("  restored just three shadow registers -- no 10-word choice")
    print("  point was ever written to memory.")

    banner("3. The zone check (section 3.2.3)")
    machine = Machine()
    print("Using a float as an address must trap:")
    try:
        machine.memory.data_read(0x40000, Zone.GLOBAL, Type.FLOAT)
    except ZoneTrap as trap:
        print(f"  ZoneTrap: {trap}")
    print("Lists may not point into the local stack:")
    try:
        machine.memory.data_read(0x180000, Zone.LOCAL, Type.LIST)
    except ZoneTrap as trap:
        print(f"  ZoneTrap: {trap}")

    banner("4. The zone-sectioned data cache (section 3.2.4)")
    print(render_cache_experiment())

    banner("5. Compiled KCM code (the macrocode monitor)")
    result = run_query("append([], L, L).\n"
                       "append([H|T], L, [H|R]) :- append(T, L, R).\n",
                       "append([a, b], [c], X)")
    machine = result.machine
    entry = machine.predicate_address("append", 3)
    print("append/3 compiles to:")
    print(disassemble_range(machine.code, entry, entry + 20))
    print("\nNote the indexing switch, the try_me_else/trust_me chain,")
    print("the neck separating head from body, and the absence of any")
    print("instruction for the pass-through second argument.")


if __name__ == "__main__":
    main()
