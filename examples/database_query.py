#!/usr/bin/env python3
"""Database queries and the effect of KCM's clause indexing.

The paper's `query` benchmark (a population-density join over 25
countries) showed KCM's largest win over Quintus — "showing the
efficiency of KCM indexing" (section 4.2).  This example runs the same
workload and makes the indexing effect visible with the machine's own
counters: a *bound* first argument dispatches through
SWITCH_ON_CONSTANT straight to the single matching clause (zero choice
points), while an *unbound* scan walks the try/retry/trust chain.

Run:  python examples/database_query.py
"""

from repro import run_query
from repro.bench.programs import QUERY


def show(title, result):
    stats = result.stats
    print(f"{title:48s} inferences={stats.inferences:5d}  "
          f"cycles={stats.cycles:7d}  CPs={stats.choice_points_created:4d}")


def main() -> None:
    print("The paper's query benchmark: density pairs with")
    print("  D1 > D2 and 20*D1 < 21*D2 (within 5%)\n")

    # Indexed point lookups: deterministic, no choice points.
    result = run_query(QUERY, "pop(japan, P), area(japan, A)")
    print("Japan:", result.bindings_text())
    show("  bound lookup (indexed dispatch)", result)

    # Full scan: the unbound argument forces the alternatives chain.
    result = run_query(QUERY, "pop(C, P)", all_solutions=True)
    show(f"  unbound scan ({len(result.solutions)} countries)", result)

    # One density computation (integer multiply + divide on the TTL
    # ALU are microcode loops: watch the cycles jump).
    result = run_query(QUERY, "density(japan, D)")
    print("\ndensity(japan):", result.bindings_text())
    show("  one density (mul + div)", result)

    # The whole benchmark: all qualifying pairs.
    result = run_query(QUERY, "query(C1, D1, C2, D2)",
                       all_solutions=True)
    print(f"\nall qualifying pairs ({len(result.solutions)}):")
    for solution in result.solutions:
        print(f"  {solution['C1'].name:12s} ({solution['D1'].value:4d})"
              f"  ~  {solution['C2'].name:12s}"
              f" ({solution['D2'].value:4d})")
    show("\nfull query benchmark", result)
    print(f"\n  {result.milliseconds:.2f} ms at 80 ns"
          f" = {result.klips:.0f} Klips"
          f"   (paper Table 3: 12.6 ms, 229 Klips)")


if __name__ == "__main__":
    main()
