#!/usr/bin/env python3
"""Machine shoot-out: KCM vs PLM vs Quintus on one workload.

Runs naive reverse and the database query on all three machine models
(the same functional simulator under three cost/feature
configurations) and prints the paper-style comparison, plus one
ablation: KCM with shallow backtracking switched off.

Run:  python examples/machine_comparison.py
"""

from repro import Machine, run_query
from repro.baselines.plm import plm_machine
from repro.baselines.quintus import quintus_machine
from repro.bench.programs import QUERY
from repro.core.costs import Features
from repro.core.symbols import SymbolTable

NREV = """
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).
"""
NREV_QUERY = ("nrev([1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20,"
              "21,22,23,24,25,26,27,28,29,30], R)")

MACHINES = [
    ("KCM (80 ns)", lambda: None),
    ("PLM (100 ns)", lambda: plm_machine()),
    ("Quintus/SUN-3 (40 ns)", lambda: quintus_machine()),
    ("KCM, shallow backtracking off",
     lambda: Machine(symbols=SymbolTable(),
                     features=Features(shallow_backtracking=False))),
]


def run_on(factory, program, query, all_solutions=False):
    machine = factory()
    # Warm run then measured run (the paper's best-of-N methodology).
    first = run_query(program, query, machine=machine,
                      all_solutions=all_solutions)
    m = first.machine
    m.memory.reset_statistics()
    stats = m.run(m.image.entry, collect_all=all_solutions,
                  answer_names=m.image.query_variable_names)
    cycle = m.costs.cycle_seconds
    return stats.milliseconds(cycle), stats.klips(cycle), stats


def main() -> None:
    for title, program, query, allsol in [
            ("nrev(30) -- deterministic list kernel", NREV, NREV_QUERY,
             False),
            ("query -- database join with arithmetic", QUERY,
             "query(C1, D1, C2, D2), fail", False)]:
        print(f"\n{title}")
        print(f"{'machine':34s} {'ms':>9s} {'Klips':>8s} "
              f"{'CPs':>6s} {'deep':>6s} {'shallow':>8s}")
        baseline_ms = None
        for name, factory in MACHINES:
            ms, klips, stats = run_on(factory, program, query, allsol)
            if baseline_ms is None:
                baseline_ms = ms
            print(f"{name:34s} {ms:9.3f} {klips:8.1f} "
                  f"{stats.choice_points_created:6d} "
                  f"{stats.deep_fails:6d} {stats.shallow_fails:8d}"
                  f"   ({ms / baseline_ms:4.2f}x)")
    print("\nPaper reference points: PLM/KCM average 3.05x,")
    print("Quintus/KCM average 7.85x (Tables 2 and 3).")


if __name__ == "__main__":
    main()
