"""Unit tests for the MMU and page-table RAM (paper section 3.2.5)."""

import pytest

from repro.core.tags import PAGE_SIZE_WORDS
from repro.errors import PageFault, ProtectionFault
from repro.memory.mmu import MMU, VIRTUAL_PAGES


class TestTranslation:
    def test_demand_mapping_charges_fault_cycles(self):
        mmu = MMU(page_fault_cycles=2000)
        physical, cycles = mmu.translate(0, is_write=False)
        assert cycles == 2000
        assert mmu.faults == 1

    def test_second_access_is_free(self):
        mmu = MMU(page_fault_cycles=2000)
        mmu.translate(0, is_write=False)
        _, cycles = mmu.translate(5, is_write=False)
        assert cycles == 0

    def test_translation_preserves_offset(self):
        mmu = MMU()
        page = mmu.map_page(3)
        physical, _ = mmu.translate(3 * PAGE_SIZE_WORDS + 77,
                                    is_write=False)
        assert physical == page * PAGE_SIZE_WORDS + 77

    def test_no_demand_paging_faults(self):
        mmu = MMU(demand_paging=False)
        with pytest.raises(PageFault):
            mmu.translate(0, is_write=False)

    def test_separate_code_and_data_spaces(self):
        mmu = MMU()
        data_page = mmu.map_page(0, code_space=False)
        code_page = mmu.map_page(0, code_space=True)
        assert data_page != code_page
        d, _ = mmu.translate(0, is_write=False, code_space=False)
        c, _ = mmu.translate(0, is_write=False, code_space=True)
        assert d != c

    def test_page_table_has_16k_entries_per_space(self):
        assert VIRTUAL_PAGES == 1 << 14
        mmu = MMU()
        assert len(mmu.data_table) == VIRTUAL_PAGES
        assert len(mmu.code_table) == VIRTUAL_PAGES


class TestProtection:
    def test_write_to_read_only_page(self):
        mmu = MMU()
        mmu.map_page(1, writable=False)
        mmu.translate(PAGE_SIZE_WORDS, is_write=False)
        with pytest.raises(ProtectionFault):
            mmu.translate(PAGE_SIZE_WORDS, is_write=True)

    def test_status_bits_tracked(self):
        mmu = MMU()
        mmu.map_page(0)
        mmu.translate(0, is_write=True)
        entry = mmu.data_table[0]
        from repro.memory.mmu import DIRTY, REFERENCED
        assert entry.status & DIRTY
        assert entry.status & REFERENCED


class TestRezoning:
    def test_data_page_moves_to_code_space(self):
        """The section 3.2.1 batch-compilation hand-over."""
        mmu = MMU()
        physical = mmu.map_page(2, code_space=False)
        mmu.rezone_data_page_to_code(2)
        assert not mmu.data_table[2].valid
        entry = mmu.code_table[2]
        assert entry.valid
        assert entry.physical_page == physical
        # The re-zoned page is read-only code.
        with pytest.raises(ProtectionFault):
            mmu.translate(2 * PAGE_SIZE_WORDS, is_write=True,
                          code_space=True)

    def test_rezone_unmapped_page_fails(self):
        with pytest.raises(PageFault):
            MMU().rezone_data_page_to_code(9)


class TestCapacity:
    def test_out_of_physical_memory(self):
        mmu = MMU(physical_pages=2)
        mmu.map_page(0)
        mmu.map_page(1)
        with pytest.raises(PageFault):
            mmu.map_page(2)
