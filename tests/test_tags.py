"""Unit tests for the word/address bit layout (paper figures 2 and 7)."""

import pytest

from repro.core import tags
from repro.core.tags import Type, Zone


class TestLayoutConstants:
    def test_word_split_is_32_32(self):
        assert tags.VALUE_BITS == 32
        assert tags.TAG_BITS == 32
        assert tags.WORD_BITS == 64

    def test_type_field_is_bits_51_to_48(self):
        assert tags.TYPE_SHIFT == 48
        assert tags.TYPE_BITS == 4

    def test_zone_field_is_bits_55_to_52(self):
        assert tags.ZONE_SHIFT == 52
        assert tags.ZONE_BITS == 4

    def test_sixteen_types_and_zones_fit_their_fields(self):
        assert len(Type) == 16
        assert all(0 <= int(t) < 16 for t in Type)
        assert all(0 <= int(z) < 16 for z in Zone)

    def test_addresses_are_28_bits(self):
        assert tags.ADDRESS_BITS == 28
        assert tags.ADDRESS_MASK == (1 << 28) - 1

    def test_page_size_is_16k_words(self):
        assert tags.PAGE_SIZE_WORDS == 16 * 1024
        assert tags.PAGE_NUMBER_BITS == 14

    def test_zone_granule_is_4k_words(self):
        assert tags.ZONE_GRANULE_WORDS == 4 * 1024


class TestTagPacking:
    @pytest.mark.parametrize("type_", list(Type))
    def test_type_roundtrip(self, type_):
        tag = tags.make_tag(type_)
        assert tags.tag_type(tag) is type_

    @pytest.mark.parametrize("zone", list(Zone))
    def test_zone_roundtrip(self, zone):
        tag = tags.make_tag(Type.REF, zone)
        assert tags.tag_zone(tag) is zone
        assert tags.tag_type(tag) is Type.REF

    def test_gc_bits_independent(self):
        tag = tags.make_tag(Type.LIST, Zone.GLOBAL, gc_mark=True)
        assert tags.tag_gc_mark(tag)
        assert not tags.tag_gc_link(tag)
        tag = tags.with_gc_link(tag, True)
        assert tags.tag_gc_mark(tag) and tags.tag_gc_link(tag)
        tag = tags.with_gc_mark(tag, False)
        assert not tags.tag_gc_mark(tag) and tags.tag_gc_link(tag)
        # Type and zone untouched by GC-bit edits.
        assert tags.tag_type(tag) is Type.LIST
        assert tags.tag_zone(tag) is Zone.GLOBAL

    def test_tag_fits_32_bits(self):
        tag = tags.make_tag(Type.SPARE, Zone.SYSTEM, True, True)
        assert 0 <= tag < (1 << 32)


class TestAddressDecomposition:
    def test_page_number_and_offset(self):
        address = (5 << 14) | 123
        assert tags.page_number(address) == 5
        assert tags.page_offset(address) == 123

    def test_page_offset_covers_full_page(self):
        assert tags.page_offset(tags.PAGE_SIZE_WORDS - 1) \
            == tags.PAGE_SIZE_WORDS - 1
        assert tags.page_offset(tags.PAGE_SIZE_WORDS) == 0
        assert tags.page_number(tags.PAGE_SIZE_WORDS) == 1

    def test_address_in_range_rejects_high_bits(self):
        assert tags.address_in_range(tags.ADDRESS_MASK)
        assert not tags.address_in_range(tags.ADDRESS_MASK + 1)
        assert not tags.address_in_range(-1)
        assert tags.address_in_range(0)

    def test_zone_granule_index(self):
        assert tags.zone_granule(0) == 0
        assert tags.zone_granule(4096) == 1
        assert tags.zone_granule(4095) == 0


class TestZoneTypeRules:
    def test_numbers_never_address_anything(self):
        for allowed in tags.ZONE_ADDRESS_TYPES.values():
            assert Type.INT not in allowed
            assert Type.FLOAT not in allowed

    def test_lists_and_structures_only_into_global(self):
        assert Type.LIST in tags.ZONE_ADDRESS_TYPES[Zone.GLOBAL]
        assert Type.STRUCT in tags.ZONE_ADDRESS_TYPES[Zone.GLOBAL]
        assert Type.LIST not in tags.ZONE_ADDRESS_TYPES[Zone.LOCAL]
        assert Type.STRUCT not in tags.ZONE_ADDRESS_TYPES[Zone.LOCAL]

    def test_local_accepts_references(self):
        assert Type.REF in tags.ZONE_ADDRESS_TYPES[Zone.LOCAL]

    def test_pointer_and_immediate_partition(self):
        assert not (tags.POINTER_TYPES & tags.IMMEDIATE_TYPES)
