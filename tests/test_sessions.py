"""Fault-tolerant session engines (ISSUE 10): first-class engines
stream bit-identically with pause/pickle/resume, the engine store
hibernates under a byte budget with verified wakes, and the session
service survives chaos kills and lease expiries with exactly-once
accounting."""

import pickle

import pytest

from repro.bench.programs import SUITE
from repro.serve import (
    ChaosPolicy, Engine, EngineSnapshot, EngineStore, EngineStoreCorrupt,
    LeasePolicy, QueryService, RetryPolicy, SessionError, SessionExpired,
    SessionLoadSpec, SessionReaper, SessionService, UnknownSession,
    run_session_soak, verify_session_chaos_invariant,
)
from repro.serve.session import DONE, EXPIRED, SOLUTION

NAMES = ["queens", "mutest", "con1", "nrev1", "divide10", "query"]
PROGRAMS = {name: SUITE[name].source_pure for name in NAMES}
MIX = [(name, SUITE[name].query_pure) for name in NAMES]


@pytest.fixture(scope="module")
def reference():
    """Fault-free in-process all-solutions results, one per MIX slot."""
    with QueryService(PROGRAMS, workers=0, all_solutions=True) as service:
        return service.run_many(MIX)


def _ref(reference, name):
    return reference[NAMES.index(name)]


def _drain(engine):
    solutions = []
    while True:
        solution = engine.next_solution()
        if solution is None:
            return solutions
        solutions.append(solution)


# -- Engine: streamed solutions, pause, resume -------------------------------

class TestEngine:
    def test_streams_bit_identically(self, reference):
        expected = _ref(reference, "queens")
        engine = Engine(PROGRAMS["queens"], SUITE["queens"].query_pure)
        streamed = []
        while True:
            solution = engine.next_solution()
            if solution is None:
                break
            streamed.append(solution)
        assert streamed == expected.solutions
        assert engine.solutions == expected.solutions
        assert engine.stats == expected.stats
        assert engine.exhausted
        # Exhausted engines keep answering None without re-running.
        assert engine.next_solution() is None
        assert engine.stats == expected.stats

    def test_pause_pickle_resume_mid_stream(self, reference):
        expected = _ref(reference, "queens")
        engine = Engine(PROGRAMS["queens"], SUITE["queens"].query_pure)
        first = [engine.next_solution(), engine.next_solution()]
        payload = engine.pause().to_bytes()
        resumed = Engine.resume(
            EngineSnapshot.from_bytes(pickle.loads(pickle.dumps(payload))))
        rest = []
        while True:
            solution = resumed.next_solution()
            if solution is None:
                break
            rest.append(solution)
        assert first + rest == expected.solutions
        assert resumed.stats == expected.stats
        assert resumed.streamed == len(expected.solutions)

    def test_pause_before_start_resumes_full_stream(self, reference):
        expected = _ref(reference, "mutest")
        engine = Engine(PROGRAMS["mutest"], SUITE["mutest"].query_pure)
        snapshot = engine.pause()
        assert not snapshot.started
        resumed = Engine.resume(snapshot)
        streamed = []
        while True:
            solution = resumed.next_solution()
            if solution is None:
                break
            streamed.append(solution)
        assert streamed == expected.solutions
        assert resumed.stats == expected.stats

    def test_sliced_mode_checkpoints_and_stays_identical(self, reference):
        expected = _ref(reference, "queens")
        checkpoints = []
        engine = Engine(PROGRAMS["queens"], SUITE["queens"].query_pure,
                        checkpoint_every=5_000,
                        on_checkpoint=checkpoints.append)
        first = [engine.next_solution(), engine.next_solution()]
        snapshot = engine.pause()
        resumed = Engine.resume(snapshot, checkpoint_every=5_000)
        rest = []
        while True:
            solution = resumed.next_solution()
            if solution is None:
                break
            rest.append(solution)
        assert first + rest == expected.solutions
        assert resumed.stats == expected.stats
        assert checkpoints, "the cycle grid never fired"

    def test_snapshot_key_mismatch_rejected(self):
        engine = Engine(PROGRAMS["con1"], SUITE["con1"].query_pure)
        snapshot = engine.pause()
        with pytest.raises(ValueError, match="does not match"):
            Engine.resume(EngineSnapshot(
                key="bogus", program=snapshot.program,
                query=snapshot.query, io_mode=snapshot.io_mode,
                checkpoint=snapshot.checkpoint,
                streamed=snapshot.streamed, started=snapshot.started))


# -- EngineStore: hibernation ------------------------------------------------

class TestEngineStore:
    def test_budget_spills_lru_and_wakes_verified(self):
        with EngineStore(budget_bytes=100) as store:
            store.put("a", b"x" * 80)
            store.put("b", b"y" * 80)      # "a" hibernates
            store.put("c", b"z" * 80)      # "b" hibernates
            assert len(store) == 3
            assert store.hibernated_count == 2
            assert store.spills == 2
            assert "a" in store and "b" in store and "c" in store
            assert store.get("a") == b"x" * 80
            assert store.wakes == 1
            # The wake re-admitted "a" as warmest; "c" went cold.
            assert store.get("b") == b"y" * 80
            assert store.wakes == 2

    def test_corrupted_spill_refuses_to_wake(self):
        with EngineStore(budget_bytes=10) as store:
            store.put("a", b"x" * 64)
            store.put("b", b"y" * 64)      # "a" hibernates
            path = store._hibernated["a"][0]
            with open(path, "wb") as handle:
                handle.write(b"garbage")
            with pytest.raises(EngineStoreCorrupt):
                store.get("a")

    def test_pop_and_close_balance_to_zero(self, tmp_path):
        store = EngineStore(budget_bytes=10, directory=str(tmp_path))
        store.put("a", b"x" * 64)
        store.put("b", b"y" * 64)
        assert store.pop("a")
        assert not store.pop("a")          # already gone
        assert store.pop("b")
        assert len(store) == 0 and store.resident_bytes == 0
        store.close()
        with pytest.raises(RuntimeError):
            store.put("c", b"z")

    def test_round_trips_a_real_engine(self, reference):
        expected = _ref(reference, "con1")
        engine = Engine(PROGRAMS["con1"], SUITE["con1"].query_pure)
        with EngineStore(budget_bytes=1) as store:
            store.put("s1", engine.pause().to_bytes())
            store.put("s2", b"0" * 32)     # forces "s1" to hibernate
            assert store.hibernated_count >= 1
            woken = Engine.resume(
                EngineSnapshot.from_bytes(store.get("s1")))
        assert _drain(woken) == expected.solutions
        assert woken.stats == expected.stats


# -- SessionService: streaming, leases, migration ----------------------------

class TestSessionService:
    def test_interleaved_sessions_match_reference(self, reference):
        with SessionService(PROGRAMS, workers=0) as service:
            session_ids = [service.open(name, query)
                           for name, query in MIX]
            streams = {sid: [] for sid in session_ids}
            finals = {}
            open_ids = list(session_ids)
            while open_ids:
                outcomes = service.advance(open_ids)
                still = []
                for sid, outcome in zip(open_ids, outcomes):
                    if outcome.status == SOLUTION:
                        streams[sid].append(outcome.solution)
                        still.append(sid)
                    else:
                        assert outcome.status == DONE
                        finals[sid] = outcome
                open_ids = still
            for sid, expected in zip(session_ids, reference):
                assert streams[sid] == expected.solutions
                assert finals[sid].solutions == expected.solutions
                assert finals[sid].stats == expected.stats
            counters = service.counters
            assert counters["sessions_opened"] == len(MIX)
            assert counters["sessions_done"] == len(MIX)
            assert service.active_sessions == 0
            assert len(service.store) == 0

    def test_single_solution_query_streams_then_finishes(self, reference):
        # con1's only answer coincides with exhaustion: the stream
        # must still deliver it as a SOLUTION before reporting DONE.
        expected = _ref(reference, "con1")
        with SessionService(PROGRAMS, workers=0) as service:
            sid = service.open("con1", SUITE["con1"].query_pure)
            assert service.next_solution(sid) == expected.solutions[0]
            assert service.next_solution(sid) is None
            with pytest.raises(UnknownSession):
                service.next_solution(sid)

    def test_lease_expiry_reaper_and_admission(self):
        clock = [0.0]
        with SessionService(PROGRAMS, workers=0,
                            lease=LeasePolicy(ttl_s=10.0, max_sessions=2),
                            clock=lambda: clock[0]) as service:
            reaper = SessionReaper(service, interval_s=5.0, jitter=0.0,
                                   seed=3)
            a = service.open("queens", SUITE["queens"].query_pure)
            b = service.open("mutest", SUITE["mutest"].query_pure)
            with pytest.raises(SessionError, match="limit"):
                service.open("con1", SUITE["con1"].query_pure)
            service.advance([a, b])
            clock[0] = 4.0
            service.advance([a])           # renews a's lease only
            assert reaper.tick() == []     # not sweep time yet
            clock[0] = 12.0                # b lapsed at 10; a lives to 14
            assert reaper.tick() == [b]
            assert reaper.reaped_total == 1
            health = service.health()
            assert health.leases_expired == 1
            assert health.active_sessions == 1
            with pytest.raises(UnknownSession):
                service.next_solution(b)
            clock[0] = 20.0                # a lapsed too
            with pytest.raises(SessionExpired):
                service.next_solution(a)
            assert service.health().leases_expired == 2
            assert service.active_sessions == 0
            assert len(service.store) == 0

    def test_renew_and_expire_hook(self):
        clock = [0.0]
        with SessionService(PROGRAMS, workers=0,
                            lease=LeasePolicy(ttl_s=10.0),
                            clock=lambda: clock[0]) as service:
            sid = service.open("con1", SUITE["con1"].query_pure)
            clock[0] = 8.0
            assert service.renew(sid) == 18.0
            service.expire_lease(sid)
            assert service.reap() == [sid]
            with pytest.raises(UnknownSession):
                service.renew(sid)

    def test_hibernation_pressure_keeps_streams_identical(self, reference):
        # A budget far below one checkpoint: every idle session's
        # resume token hibernates, and every step wakes one.
        store = EngineStore(budget_bytes=1_024)
        with SessionService(PROGRAMS, workers=0, store=store) as service:
            session_ids = [service.open(name, query)
                           for name, query in MIX]
            streams = {sid: [] for sid in session_ids}
            finals = {}
            open_ids = list(session_ids)
            while open_ids:
                hibernated = service.health().hibernated_engines
                outcomes = service.advance(open_ids)
                still = []
                for sid, outcome in zip(open_ids, outcomes):
                    if outcome.status == SOLUTION:
                        streams[sid].append(outcome.solution)
                        still.append(sid)
                    else:
                        finals[sid] = outcome
                open_ids = still
            assert store.spills > 0
            assert store.wakes > 0
            for sid, expected in zip(session_ids, reference):
                assert streams[sid] == expected.solutions
                assert finals[sid].stats == expected.stats
            assert len(store) == 0

    def test_worker_crash_migration_is_bit_identical(self, reference):
        """The tentpole gate in miniature: every step's first attempt
        is killed; the service resumes each on another attempt from
        its checkpoint (or the step's own resume token), and the
        stream plus final RunStats match the uninterrupted run."""
        expected = _ref(reference, "queens")
        chaos = ChaosPolicy(seed=7, kill_rate=1.0,
                            kill_window=(200, 4_000), kill_relative=True,
                            max_kills_per_slot=1)
        retry = RetryPolicy(max_attempts=3, base_delay_s=0.01, seed=7)
        with SessionService(PROGRAMS, workers=2, chaos=chaos,
                            retry=retry,
                            checkpoint_every=2_000) as service:
            sid = service.open("queens", SUITE["queens"].query_pure)
            streamed = []
            while True:
                outcome = service.advance([sid])[0]
                if outcome.status == SOLUTION:
                    streamed.append(outcome.solution)
                elif outcome.status == DONE:
                    final = outcome
                    break
            health = service.health()
        assert streamed == expected.solutions
        assert final.solutions == expected.solutions
        assert final.stats == expected.stats
        assert health.migrations > 0
        assert health.crashes > 0

    def test_session_gauges_in_health(self):
        with SessionService(PROGRAMS, workers=0) as service:
            assert service.health().active_sessions == 0
            sid = service.open("queens", SUITE["queens"].query_pure)
            assert service.health().active_sessions == 1
            service.close_session(sid)
            assert service.health().active_sessions == 0
            assert service.counters["sessions_closed"] == 1

    def test_advance_rejects_duplicates(self):
        with SessionService(PROGRAMS, workers=0) as service:
            sid = service.open("con1", SUITE["con1"].query_pure)
            with pytest.raises(ValueError, match="duplicate"):
                service.advance([sid, sid])


# -- the chaos invariant and the soak ----------------------------------------

def test_session_chaos_invariant_over_plm_corpus():
    """ISSUE 10 acceptance: seeded kills plus forced lease expiries
    mid-stream leave every surviving session's solution sequence and
    RunStats bit-identical to the fault-free reference, with no engine
    leaked."""
    chaos = ChaosPolicy(seed=13, kill_rate=0.5, kill_window=(200, 4_000),
                        kill_relative=True, max_kills_per_slot=1)
    report = verify_session_chaos_invariant(
        PROGRAMS, MIX, chaos, workers=2, checkpoint_every=2_000,
        seed=13, store_budget=20_000)
    assert report["ok"], report["mismatches"]
    assert report["stats_checked"] == len(MIX) - len(report["expired"])


def test_session_chaos_invariant_rejects_fault_injection():
    with pytest.raises(ValueError, match="inject_rate"):
        verify_session_chaos_invariant(
            PROGRAMS, MIX, ChaosPolicy(inject_rate=1.0))


def test_session_soak_accounts_exactly_once():
    spec = SessionLoadSpec(sessions=8, seed=5, abandon_rate=0.3)
    with SessionService(PROGRAMS, workers=0,
                        store=EngineStore(budget_bytes=20_000)) as service:
        report = run_session_soak(service, spec, MIX)
    assert report.accounting_ok, report.mismatches
    assert report.solutions_ok, report.mismatches
    assert report.done + report.expired + report.failed == spec.sessions
    assert report.failed == 0
