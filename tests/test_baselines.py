"""Baseline machine models: configuration sanity and size models."""

import pytest

from repro.api import compile_and_load, run_query
from repro.baselines.plm import (
    PLM_CYCLE_SECONDS, PLMCodeModel, plm_cost_model, plm_features,
    plm_machine,
)
from repro.baselines.quintus import (
    QUINTUS_CYCLE_SECONDS, quintus_cost_model, quintus_machine,
)
from repro.baselines.spur import SPURCodeModel
from repro.core.opcodes import ArithOp
from repro.core.symbols import SymbolTable

APPEND = ("append([], L, L).\n"
          "append([H|T], L, [H|R]) :- append(T, L, R).\n")
QUERY = "append([1,2,3], [4], X)"


class TestConfigurations:
    def test_cycle_times(self):
        assert PLM_CYCLE_SECONDS == pytest.approx(100e-9)     # 10 MHz
        assert QUINTUS_CYCLE_SECONDS == pytest.approx(40e-9)  # 25 MHz

    def test_baselines_disable_the_kcm_units(self):
        for features in (plm_features(),):
            assert not features.shallow_backtracking
            assert not features.mwac
            assert not features.parallel_trail

    def test_quintus_pays_emulation_dispatch(self):
        assert quintus_cost_model().dispatch_overhead > 5
        assert plm_cost_model().dispatch_overhead >= 1

    def test_plm_software_multiply(self):
        costs = plm_cost_model()
        assert costs.arith_int[ArithOp.MUL] >= 30


class TestFunctionalEquivalence:
    """All machines must compute identical answers — only time differs."""

    PROGRAMS = [
        (APPEND, QUERY),
        ("member(X,[X|_]). member(X,[_|T]) :- member(X,T).",
         "member(X, [a, b, c])"),
        ("f(X, R) :- ( X > 0 -> R = pos ; R = neg ).", "f(-3, R)"),
    ]

    @pytest.mark.parametrize("program,query", PROGRAMS)
    def test_same_solutions_all_machines(self, program, query):
        reference = run_query(program, query, all_solutions=True)
        for factory in (plm_machine, quintus_machine):
            machine = factory(SymbolTable())
            result = run_query(program, query, machine=machine,
                               all_solutions=True)
            assert result.solutions == reference.solutions

    @pytest.mark.parametrize("program,query", PROGRAMS)
    def test_same_inference_counts(self, program, query):
        reference = run_query(program, query)
        for factory in (plm_machine, quintus_machine):
            machine = factory(SymbolTable())
            result = run_query(program, query, machine=machine)
            assert result.stats.inferences == reference.stats.inferences

    def test_baselines_are_slower_in_wall_clock(self):
        reference = run_query(APPEND, QUERY)
        for factory in (plm_machine, quintus_machine):
            machine = factory(SymbolTable())
            result = run_query(APPEND, QUERY, machine=machine)
            assert result.milliseconds > reference.milliseconds


class TestSizeModels:
    def test_plm_model_counts_both_dimensions(self):
        image = compile_and_load(APPEND, QUERY).image
        size = PLMCodeModel().measure(image, APPEND, QUERY)
        assert size.instructions > 0
        assert size.bytes > size.instructions     # >1 byte each

    def test_plm_average_instruction_length(self):
        # The paper: "The average PLM instruction is 3.3 bytes long."
        image = compile_and_load(APPEND, QUERY).image
        size = PLMCodeModel().measure(image, APPEND, QUERY)
        assert 2.0 <= size.bytes / size.instructions <= 4.5

    def test_cdr_coding_folds_static_cells(self):
        long_list = "[" + ",".join(f"a{i}" for i in range(30)) + "]"
        query = f"append({long_list}, [z], X)"
        image = compile_and_load(APPEND, query).image
        plm = PLMCodeModel().measure(image, APPEND, query)
        # Each static cell costs KCM two instructions, PLM one.
        assert image.program_instructions > plm.instructions * 1.2

    def test_spur_expansion_factor(self):
        spur = SPURCodeModel().measure(APPEND, QUERY)
        image = compile_and_load(APPEND, QUERY).image
        ratio = spur.instructions / image.program_instructions
        # ASPLOS-II territory: order of 10x.
        assert 6 <= ratio <= 25
        assert spur.bytes == 4 * spur.instructions
