"""Heap term encode/decode round trips and machine-level helpers."""

import pytest

from repro.core.decode import decode_word, encode_term
from repro.core.machine import Machine
from repro.core.registers import RegisterFile, X_REGISTERS
from repro.core.symbols import SymbolTable
from repro.core.tags import Zone
from repro.core.trail import Trail
from repro.core.word import make_int, make_list, make_ref, make_unbound
from repro.prolog.parser import parse_term
from repro.prolog.writer import term_to_text


@pytest.fixture
def machine():
    return Machine(symbols=SymbolTable())


class TestEncodeDecode:
    CASES = [
        "42", "-7", "3.5", "foo", "[]",
        "[1, 2, 3]", "f(a, b)", "f(g(h(1)), [x|T])",
        "point(X, Y)", "[a, [b, [c]]]",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_roundtrip(self, machine, text):
        term = parse_term(text)
        word = encode_term(machine, term)
        decoded = decode_word(machine, word)
        # Variables decode with fresh names; compare shape via writer
        # after normalising variable names through a second parse.
        assert term_to_text(decoded).count("(") \
            == term_to_text(term).count("(")
        if not any(c.isupper() or c == "_" for c in text):
            assert term_to_text(decoded) == term_to_text(term)

    def test_shared_variables_stay_shared(self, machine):
        word = encode_term(machine, parse_term("f(X, X)"))
        decoded = decode_word(machine, word)
        assert decoded.args[0] == decoded.args[1]

    def test_distinct_variables_stay_distinct(self, machine):
        word = encode_term(machine, parse_term("f(X, Y)"))
        decoded = decode_word(machine, word)
        assert decoded.args[0] != decoded.args[1]

    def test_named_decoding(self, machine):
        word = encode_term(machine, parse_term("X"))
        named = decode_word(machine, word, names={word.value: "Answer"})
        assert named.name == "Answer"


class TestRegisterFile:
    def test_x_register_bounds(self):
        regs = RegisterFile()
        regs.set_x(0, make_int(1))
        assert regs.x(0) == make_int(1)
        with pytest.raises(IndexError):
            regs.x(X_REGISTERS)
        with pytest.raises(IndexError):
            regs.set_x(X_REGISTERS, make_int(1))

    def test_argument_block_save_restore(self):
        regs = RegisterFile()
        for i in range(5):
            regs.set_x(i, make_int(i * 10))
        saved = regs.arguments(5)
        for i in range(5):
            regs.set_x(i, make_int(-1))
        regs.restore_arguments(saved)
        assert [regs.x(i).value for i in range(5)] == [0, 10, 20, 30, 40]


class TestTrail:
    def make_trail(self):
        cells = {}

        def read(address, zone):
            return cells[address]

        def write(address, word, zone):
            cells[address] = word

        return Trail(1000, read, write), cells

    def test_conditional_trailing_decision(self):
        trail, _ = self.make_trail()
        # Global cell older than HB: trail it.
        assert trail.needs_trailing(10, Zone.GLOBAL, hb=20, lb=0)
        # Younger than HB: vanishes on backtrack anyway.
        assert not trail.needs_trailing(30, Zone.GLOBAL, hb=20, lb=0)
        # Local cells compare against LB.
        assert trail.needs_trailing(5, Zone.LOCAL, hb=0, lb=9)
        assert not trail.needs_trailing(12, Zone.LOCAL, hb=0, lb=9)

    def test_unwind_restores_unbound(self):
        trail, cells = self.make_trail()
        cells[77] = make_int(5)          # the "bound" cell
        trail.push(77, Zone.GLOBAL)
        undone = trail.unwind_to(trail.base)
        assert undone == 1
        assert cells[77] == make_unbound(77, Zone.GLOBAL)
        assert trail.top == trail.base

    def test_unwind_to_midpoint(self):
        trail, cells = self.make_trail()
        for address in (10, 11, 12):
            cells[address] = make_int(address)
            trail.push(address, Zone.GLOBAL)
        mark = trail.base + 1
        trail.unwind_to(mark)
        assert cells[10] == make_int(10)             # still bound
        assert cells[11] == make_unbound(11, Zone.GLOBAL)
        assert cells[12] == make_unbound(12, Zone.GLOBAL)


class TestDecodeRefCycles:
    """Regression: decode_word used to hang on REF chains that loop
    without a direct self-reference (a -> b -> a never trips the
    unbound-variable test).  The per-hop budget turns both cycle shapes
    into the standard 'too large to decode' error."""

    def test_two_cell_ref_loop_errors(self, machine):
        store = machine.memory.store
        store.poke(100, make_ref(101, Zone.GLOBAL))
        store.poke(101, make_ref(100, Zone.GLOBAL))
        with pytest.raises(ValueError, match="cyclic"):
            decode_word(machine, make_ref(100, Zone.GLOBAL))

    def test_cyclic_tail_ref_chain_errors(self, machine):
        store = machine.memory.store
        store.poke(200, make_int(1))                  # cons head
        store.poke(201, make_ref(202, Zone.GLOBAL))   # cons tail ...
        store.poke(202, make_ref(203, Zone.GLOBAL))   # ... into a
        store.poke(203, make_ref(202, Zone.GLOBAL))   # 2-cycle
        with pytest.raises(ValueError, match="cyclic"):
            decode_word(machine, make_list(200))

    def test_self_reference_still_decodes_as_var(self, machine):
        store = machine.memory.store
        store.poke(300, make_unbound(300, Zone.GLOBAL))
        decoded = decode_word(machine, make_ref(300, Zone.GLOBAL))
        assert decoded.name == "_300"
