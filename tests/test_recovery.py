"""The trap-and-recovery subsystem end to end: handlers, checkpoints,
resume, and the deterministic fault-injection harness."""

import pytest

from repro.api import compile_and_load, run_query
from repro.core.machine import MAX_TRAP_RETRIES, Machine
from repro.core.symbols import SymbolTable
from repro.core.tags import Zone
from repro.core.traps import TrapVector
from repro.errors import (
    CycleLimitExceeded, PageFault, SpuriousTrap, StackOverflowTrap,
)
from repro.memory.layout import DEFAULT_LAYOUT, Region
from repro.memory.memory_system import MemorySystem
from repro.recovery import FaultInjector, install_default_recovery

BUILD = """
build(0, []).
build(N, [N|T]) :- N > 0, M is N - 1, build(M, T).
"""

# Tail recursion that litters the heap with dead f/3 structures: the
# compactor should reclaim nearly everything on every collection.
CHURN = """
gen(0).
gen(N) :- N > 0, mk(_), M is N - 1, gen(M).
mk(f(a, b, c)).
"""

NREV = """
concat([], L, L).
concat([H|T], L, [H|R]) :- concat(T, L, R).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), concat(RT, [H], R).
"""
NREV_QUERY = "nrev([1,2,3,4,5,6,7,8,9,10,11,12,13,14,15], R)"

INFINITE = "spin :- spin."


def tiny_zone_machine(zone=Zone.GLOBAL, words=0x4000, **memory_kwargs):
    layout = dict(DEFAULT_LAYOUT)
    region = DEFAULT_LAYOUT[zone]
    layout[zone] = Region(zone, region.base, words)
    memory = MemorySystem(layout=layout, **memory_kwargs)
    return Machine(symbols=SymbolTable(), memory=memory)


class TestStackGrowthRecovery:
    def test_overflow_recovers_and_completes(self):
        """The program that aborts on the seed machine completes once
        the growth handler is armed — no manual set_limits."""
        machine = tiny_zone_machine()
        handlers = install_default_recovery(machine)
        machine = compile_and_load(BUILD, "build(10000, L)",
                                   machine=machine)
        machine.run(machine.image.entry, answer_names=["L"])
        assert machine.solutions
        assert machine.stats.traps_recovered >= 1
        assert handlers["stack-growth"].growths.get(Zone.GLOBAL, 0) \
            + len(handlers["heap-gc"].collections) >= 1

    def test_growth_respects_the_hard_ceiling(self):
        """A ceiling below what the program needs makes the trap fatal
        again — with the report attached."""
        from repro.recovery import GrowthPolicy
        machine = tiny_zone_machine()
        base = DEFAULT_LAYOUT[Zone.GLOBAL].base
        policy = GrowthPolicy(ceilings={Zone.GLOBAL: base + 0x4000})
        install_default_recovery(machine, growth=policy,
                                 heap_min_freed_fraction=1.1)
        machine = compile_and_load(BUILD, "build(10000, L)",
                                   machine=machine)
        with pytest.raises(StackOverflowTrap) as excinfo:
            machine.run(machine.image.entry, answer_names=["L"])
        report = excinfo.value.report
        assert report is not None and not report.recovered
        assert report.zone is Zone.GLOBAL

    def test_grown_zone_never_overlaps_neighbours(self):
        machine = tiny_zone_machine()
        install_default_recovery(machine)
        machine = compile_and_load(BUILD, "build(10000, L)",
                                   machine=machine)
        machine.run(machine.image.entry, answer_names=["L"])
        entries = machine.memory.zones.entries
        spans = sorted((e.min_address, e.max_address)
                       for e in entries.values())
        for (_, high), (low, _) in zip(spans, spans[1:]):
            assert high <= low


class TestHeapRecovery:
    def test_collection_reclaims_dead_structures(self):
        """Heap overflow on garbage-heavy churn is absorbed by the
        compacting collector, not by growing the zone."""
        machine = tiny_zone_machine(words=0x2000)
        handlers = install_default_recovery(machine)
        machine = compile_and_load(CHURN, "gen(5000)", machine=machine)
        machine.run(machine.image.entry, answer_names=[])
        assert machine.solutions is not None
        assert machine.halted
        collections = handlers["heap-gc"].collections
        assert collections, "churn never triggered a collection"
        assert max(c.freed_fraction for c in collections) >= 0.2
        assert machine.stats.traps_recovered >= len(collections)

    def test_live_heap_falls_back_to_growth(self):
        """When everything is live (one growing list), collection frees
        nothing and the handler must grow the zone instead."""
        machine = tiny_zone_machine(words=0x2000)
        handlers = install_default_recovery(machine)
        machine = compile_and_load(BUILD, "build(8000, L)",
                                   machine=machine)
        machine.run(machine.image.entry, answer_names=["L"])
        assert machine.solutions
        entry = machine.memory.zones.entries[Zone.GLOBAL]
        assert entry.max_address > DEFAULT_LAYOUT[Zone.GLOBAL].base + 0x2000


class TestPageFaultRecovery:
    def test_explicit_paging_runs_to_completion(self):
        """With demand paging off every first touch traps; the page
        handler services each fault and the answer is unchanged."""
        baseline = run_query(NREV, NREV_QUERY)
        memory = MemorySystem(demand_paging=False)
        machine = Machine(symbols=SymbolTable(), memory=memory)
        handlers = install_default_recovery(machine)
        # Wire the bootstrap pages like the host does before hand-over.
        injector = FaultInjector(seed=0, page_faults=1, horizon=2)
        injector.attach(machine)
        machine = compile_and_load(NREV, NREV_QUERY, machine=machine)
        machine.run(machine.image.entry, answer_names=["R"])
        assert machine.solutions == baseline.machine.solutions
        assert handlers["page-service"].serviced >= 1

    def test_page_service_counts_as_recovery_overhead(self):
        memory = MemorySystem(demand_paging=False,
                              page_fault_cycles=2000)
        machine = Machine(symbols=SymbolTable(), memory=memory)
        install_default_recovery(machine)
        FaultInjector(seed=0, page_faults=1, horizon=2).attach(machine)
        machine = compile_and_load(NREV, NREV_QUERY, machine=machine)
        stats = machine.run(machine.image.entry, answer_names=["R"])
        assert stats.traps_recovered >= 1
        assert stats.recovery_cycles >= 2000 * stats.per_trap["PageFault"]


class TestFaultInjection:
    def test_schedule_is_deterministic(self):
        a = FaultInjector(seed=11, page_faults=3, zone_squeezes=2,
                          spurious=4, horizon=9000)
        b = FaultInjector(seed=11, page_faults=3, zone_squeezes=2,
                          spurious=4, horizon=9000)
        assert [(e.cycle, e.kind) for e in a.events] \
            == [(e.cycle, e.kind) for e in b.events]

    def test_solutions_identical_under_injection(self):
        """The acceptance property: a faulted run computes exactly the
        fault-free answers."""
        baseline = run_query(NREV, NREV_QUERY)
        injector = FaultInjector(seed=5, page_faults=3, zone_squeezes=2,
                                 spurious=3,
                                 horizon=baseline.stats.cycles)
        faulted = run_query(NREV, NREV_QUERY, injector=injector)
        assert faulted.solutions == baseline.solutions
        assert faulted.stats.faults_injected == 8
        assert faulted.stats.traps_raised == faulted.stats.traps_recovered

    def test_two_seeded_runs_are_identical(self):
        def one(seed):
            injector = FaultInjector(seed=seed, page_faults=2,
                                     spurious=2, horizon=3000)
            return run_query(NREV, NREV_QUERY, injector=injector)

        first, second = one(9), one(9)
        assert first.solutions == second.solutions
        assert first.stats.cycles == second.stats.cycles
        assert [(r.kind, r.pc, r.cycles) for r in first.trap_reports] \
            == [(r.kind, r.pc, r.cycles) for r in second.trap_reports]

    def test_rewind_replays_the_same_schedule(self):
        injector = FaultInjector(seed=4, spurious=3, horizon=2000)
        first = run_query(NREV, NREV_QUERY, injector=injector)
        fired_first = [(e.cycle, e.kind) for e in injector.fired]
        injector.rewind()
        second = run_query(NREV, NREV_QUERY, injector=injector)
        assert [(e.cycle, e.kind) for e in injector.fired] == fired_first
        assert first.solutions == second.solutions

    def test_spurious_traps_are_flagged_injected(self):
        injector = FaultInjector(seed=1, spurious=2, horizon=1500)
        result = run_query(NREV, NREV_QUERY, injector=injector)
        spurious = [r for r in result.trap_reports
                    if r.kind == "SpuriousTrap"]
        assert spurious and all(r.injected for r in spurious)
        assert all(r.handler == "spurious-resume" for r in spurious)

    def test_replayed_instructions_counted_once(self):
        """Regression: a trapped-and-replayed instruction used to bump
        stats.instructions (and .inferences) twice — once on the aborted
        attempt, once on the replay.  The replay snapshot now rewinds
        both, so a faulted run reports exactly the fault-free counts.
        (Cycles legitimately differ: trap delivery and handler work are
        real simulated time, charged on top.)"""
        baseline = run_query(NREV, NREV_QUERY)
        injector = FaultInjector(seed=5, page_faults=3, zone_squeezes=2,
                                 spurious=3,
                                 horizon=baseline.stats.cycles)
        faulted = run_query(NREV, NREV_QUERY, injector=injector)
        assert faulted.stats.traps_recovered > 0
        assert faulted.stats.instructions == baseline.stats.instructions
        assert faulted.stats.inferences == baseline.stats.inferences


class TestZeroCostWhenIdle:
    def test_armed_vector_without_faults_charges_nothing(self):
        """The recovering loop has identical simulated-cycle accounting
        to the fast loop: arming recovery must not change cycle counts
        on a fault-free run."""
        plain = run_query(NREV, NREV_QUERY)
        armed = run_query(NREV, NREV_QUERY, recovery=True)
        assert armed.stats.cycles == plain.stats.cycles
        assert armed.stats.traps_raised == 0
        assert armed.solutions == plain.solutions


class TestErrorContext:
    def test_cycle_limit_carries_entry_and_addresses(self):
        with pytest.raises(CycleLimitExceeded) as excinfo:
            run_query(INFINITE, "spin", max_cycles=5_000)
        err = excinfo.value
        # run_query enters through the compiled $query/0 wrapper.
        assert "$query/0" in str(err)
        assert err.entry == "$query/0"
        assert err.recent_addresses
        assert len(err.recent_addresses) <= 16
        assert all(isinstance(a, int) for a in err.recent_addresses)

    def test_machine_errors_carry_partial_stats_and_pc(self):
        with pytest.raises(CycleLimitExceeded) as excinfo:
            run_query(INFINITE, "spin", max_cycles=5_000)
        err = excinfo.value
        assert err.stats is not None and err.stats.cycles > 5_000 - 100
        assert err.pc is not None

    def test_fatal_trap_carries_stats_and_report(self):
        machine = tiny_zone_machine()
        machine = compile_and_load(BUILD, "build(10000, L)",
                                   machine=machine)
        with pytest.raises(StackOverflowTrap) as excinfo:
            machine.run(machine.image.entry, answer_names=["L"])
        err = excinfo.value
        assert err.stats is not None and err.stats.cycles > 0
        assert err.report is not None
        assert err.report.kind == "StackOverflowTrap"
        assert err.report.registers["h"] == machine.h


class TestCheckpointResume:
    def test_resume_after_cycle_limit(self):
        machine = compile_and_load(BUILD, "build(2000, L)")
        machine.max_cycles = 3_000
        with pytest.raises(CycleLimitExceeded):
            machine.run(machine.image.entry, answer_names=["L"])
        stats = machine.resume(extra_cycles=10_000_000)
        assert machine.solutions
        assert stats.cycles > 3_000

    def test_restore_rolls_back_and_replays(self):
        """Roll the machine back to a mid-run checkpoint and resume:
        the completed run must produce the identical answer again.
        Timing is disabled because checkpoints deliberately do not
        capture cache state — with the cache model off the replay is
        cycle-exact, not just answer-exact."""
        memory = MemorySystem(timing_enabled=False)
        machine = Machine(symbols=SymbolTable(), memory=memory)
        machine = compile_and_load(BUILD, "build(200, L)",
                                   machine=machine)
        machine.max_cycles = 2_500
        with pytest.raises(CycleLimitExceeded):
            machine.run(machine.image.entry, answer_names=["L"])
        checkpoint = machine.checkpoint("watchdog")
        machine.resume(extra_cycles=10_000_000)
        first = [dict(s) for s in machine.solutions]
        first_cycles = machine.stats.cycles

        machine.restore(checkpoint)
        assert not machine.solutions
        machine.resume(extra_cycles=10_000_000)
        assert machine.solutions == first
        assert machine.stats.cycles == first_cycles

    def test_checkpoint_is_isolated_from_later_writes(self):
        machine = compile_and_load(BUILD, "build(50, L)")
        machine.max_cycles = 500
        with pytest.raises(CycleLimitExceeded):
            machine.run(machine.image.entry, answer_names=["L"])
        checkpoint = machine.checkpoint()
        h_at_checkpoint = machine.h
        machine.resume(extra_cycles=10_000_000)
        assert machine.h != h_at_checkpoint or machine.halted
        machine.restore(checkpoint)
        assert machine.h == h_at_checkpoint


class TestTrapVector:
    def test_livelock_guard_aborts_useless_recovery(self):
        """A handler that claims success without fixing anything must
        not loop forever: the retry guard re-raises the trap."""
        machine = tiny_zone_machine()
        machine.trap_vector.register(StackOverflowTrap,
                                     lambda m, t, r: True, "liar")
        machine = compile_and_load(BUILD, "build(10000, L)",
                                   machine=machine)
        with pytest.raises(StackOverflowTrap) as excinfo:
            machine.run(machine.image.entry, answer_names=["L"])
        assert excinfo.value.report.retry == MAX_TRAP_RETRIES + 1

    def test_register_unregister_and_armed(self):
        vector = TrapVector()
        assert not vector.armed
        handler = lambda m, t, r: True
        vector.register(SpuriousTrap, handler)
        assert vector.armed
        assert vector.unregister(handler)
        assert not vector.armed
        vector.register(PageFault, handler, "once")
        vector.clear()
        assert not vector.armed

    def test_later_registration_wins(self):
        vector = TrapVector()
        calls = []
        vector.register(SpuriousTrap,
                        lambda m, t, r: calls.append("first") or True)
        vector.register(SpuriousTrap,
                        lambda m, t, r: calls.append("second") or True)
        machine = Machine(symbols=SymbolTable())
        from repro.core.traps import TrapReport
        report = TrapReport(kind="SpuriousTrap", message="", pc=0,
                            cycles=0, instructions=0)
        assert vector.dispatch(machine, SpuriousTrap("x"), report)
        assert calls == ["second"]
