"""Tests for incremental compilation (paper section 3.2.1)."""

import pytest

from repro.api import compile_and_load
from repro.compiler.incremental import IncrementalLoader
from repro.errors import LinkError


@pytest.fixture
def machine():
    return compile_and_load("base(1). base(2). base(3).", "base(X)")


@pytest.fixture
def loader(machine):
    return IncrementalLoader(machine)


class TestAddProgram:
    def test_new_predicate_callable_from_new_query(self, machine,
                                                   loader):
        loader.add_program("double(X, Y) :- base(X), Y is X * 2.")
        entry, names = loader.query("double(3, Y)")
        machine.run(entry, answer_names=names)
        assert machine.solutions[0]["Y"].value == 6

    def test_new_code_calls_old_code(self, machine, loader):
        loader.add_program("total(T) :- base(A), base(B), T is A + B.")
        entry, names = loader.query("total(T)")
        machine.run(entry, answer_names=names)
        assert machine.solutions[0]["T"].value == 2

    def test_multiple_increments_stack(self, machine, loader):
        loader.add_program("p1(X) :- base(X).")
        loader.add_program("p2(X) :- p1(X), X > 1.")
        entry, names = loader.query("p2(X)")
        machine.run(entry, answer_names=names)
        assert machine.solutions[0]["X"].value == 2

    def test_redefinition_rejected(self, machine, loader):
        with pytest.raises(LinkError, match="already loaded"):
            loader.add_program("base(99).")

    def test_undefined_reference_rejected(self, machine, loader):
        with pytest.raises(LinkError, match="nothing_here"):
            loader.add_program("q :- nothing_here(1).")
            entry, _ = loader.query("q")

    def test_new_builtin_stub_generated(self, machine, loader):
        loader.add_program("check(X) :- integer(X).")
        entry, names = loader.query("check(5)")
        machine.run(entry, answer_names=names)
        assert machine.solutions


class TestQueries:
    def test_query_against_original_image(self, machine, loader):
        entry, names = loader.query("base(X), X > 2")
        machine.run(entry, answer_names=names)
        assert machine.solutions[0]["X"].value == 3

    def test_queries_get_distinct_entries(self, machine, loader):
        entry1, _ = loader.query("base(1)")
        entry2, _ = loader.query("base(2)")
        assert entry1 != entry2

    def test_query_with_control_constructs(self, machine, loader):
        entry, names = loader.query(
            "( base(9) -> R = found ; R = missing )")
        machine.run(entry, answer_names=names)
        assert machine.solutions[0]["R"].name == "missing"

    def test_original_entry_still_works(self, machine, loader):
        loader.add_program("extra(x).")
        machine.run(machine.image.entry,
                    answer_names=machine.image.query_variable_names)
        assert machine.solutions[0]["X"].value == 1


class TestCodeCachePath:
    def test_code_written_through_the_code_cache(self, machine, loader):
        writes_before = machine.memory.code_cache.stats.writes
        loader.add_program("p(a). p(b).")
        writes_after = machine.memory.code_cache.stats.writes
        assert writes_after > writes_before
        assert loader.code_write_cycles > 0

    def test_written_words_are_resident(self, machine, loader):
        loader.add_program("p(a).")
        address = machine.predicates[("p", 1)]
        # Write-through installed the line: the next fetch hits.
        assert machine.memory.code_cache.fetch(address) == 0

    def test_write_cycles_scale_with_code_size(self, machine, loader):
        before = loader.code_write_cycles
        loader.add_program("big(X) :- base(X), X > 0, X < 10, X =:= X.")
        grew_by_big = loader.code_write_cycles - before
        before = loader.code_write_cycles
        loader.add_program("small(x).")
        grew_by_small = loader.code_write_cycles - before
        assert grew_by_big > grew_by_small
