"""Property-based tests: reader/writer round trips on random terms."""

from hypothesis import given, settings, strategies as st

from repro.prolog.parser import parse_term
from repro.prolog.terms import Atom, Float, Int, Struct, Term, Var
from repro.prolog.writer import term_to_text

# -- term strategies ---------------------------------------------------------

atom_names = st.one_of(
    st.from_regex(r"[a-z][a-zA-Z0-9_]{0,8}", fullmatch=True),
    st.sampled_from(["foo", "bar", "[]", "hello world", "it's",
                     "+", "-", "*", "end_of_file"]),
)

var_names = st.from_regex(r"[A-Z][a-zA-Z0-9_]{0,6}", fullmatch=True)


def terms(max_depth: int = 3):
    base = st.one_of(
        atom_names.map(Atom),
        st.integers(min_value=-2**31, max_value=2**31 - 1).map(Int),
        st.floats(allow_nan=False, allow_infinity=False, width=32,
                  min_value=-1e6, max_value=1e6).map(Float),
        var_names.map(Var),
    )

    def extend(children):
        return st.builds(
            lambda name, args: Struct(name, tuple(args)),
            atom_names.filter(lambda n: n != "[]"),
            st.lists(children, min_size=1, max_size=3))

    return st.recursive(base, extend, max_leaves=12)


class TestReaderWriterRoundTrip:
    @given(terms())
    @settings(max_examples=150, deadline=None)
    def test_quoted_write_then_read_is_identity(self, term: Term):
        text = term_to_text(term, quoted=True)
        reparsed = parse_term(text)
        assert term_to_text(reparsed, quoted=True) == text

    @given(st.lists(st.integers(-1000, 1000), max_size=20))
    @settings(max_examples=80, deadline=None)
    def test_integer_lists_roundtrip(self, values):
        text = "[" + ",".join(map(str, values)) + "]"
        term = parse_term(text)
        out = term_to_text(term)
        assert parse_term(out) == term

    @given(terms())
    @settings(max_examples=100, deadline=None)
    def test_writer_total_on_random_terms(self, term: Term):
        # The writer never crashes and always yields non-empty text.
        assert term_to_text(term, quoted=True)

    @given(st.integers(min_value=-2**31, max_value=2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_integer_literals(self, n):
        assert parse_term(str(n)) == Int(n)
