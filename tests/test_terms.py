"""Unit tests for the source-term representation and helpers."""

import pytest

from repro.prolog.terms import (
    Atom, Int, Struct, Var, cons, functor_indicator, is_callable,
    is_list_cell, list_to_python, make_list, rename_apart,
    term_variables,
)


class TestConstruction:
    def test_struct_requires_arguments(self):
        with pytest.raises(ValueError):
            Struct("f", ())

    def test_indicator(self):
        assert Struct("f", (Atom("a"), Atom("b"))).indicator == ("f", 2)
        assert functor_indicator(Atom("x")) == ("x", 0)

    def test_functor_indicator_rejects_numbers(self):
        with pytest.raises(ValueError):
            functor_indicator(Int(3))

    def test_callable(self):
        assert is_callable(Atom("a"))
        assert is_callable(Struct("f", (Int(1),)))
        assert not is_callable(Int(1))
        assert not is_callable(Var("X"))


class TestLists:
    def test_make_and_unmake(self):
        term = make_list([Int(1), Int(2)])
        assert is_list_cell(term)
        assert list_to_python(term) == [Int(1), Int(2)]

    def test_empty_list(self):
        assert list_to_python(Atom("[]")) == []

    def test_partial_list_rejected(self):
        with pytest.raises(ValueError):
            list_to_python(cons(Int(1), Var("T")))

    def test_custom_tail(self):
        term = make_list([Int(1)], tail=Var("T"))
        assert term.args[1] == Var("T")


class TestVariables:
    def test_first_occurrence_order(self):
        term = Struct("f", (Var("B"), Struct("g", (Var("A"), Var("B")))))
        assert [v.name for v in term_variables(term)] == ["B", "A"]

    def test_deep_left_leaning_term(self):
        term = Var("X0")
        for i in range(2000):
            term = Struct("f", (term, Var(f"X{i + 1}")))
        names = term_variables(term)          # must not hit the Python
        assert len(names) == 2001             # recursion limit

    def test_rename_apart(self):
        term = Struct("f", (Var("X"), Atom("a")))
        renamed = rename_apart(term, "_1")
        assert renamed.args[0] == Var("X_1")
        assert renamed.args[1] == Atom("a")


class TestHashing:
    def test_terms_key_dictionaries(self):
        table = {Atom("a"): 1, Int(1): 2, Struct("f", (Int(1),)): 3}
        assert table[Atom("a")] == 1
        assert table[Struct("f", (Int(1),))] == 3

    def test_equality_distinguishes_types(self):
        assert Atom("1") != Int(1)
        assert Var("a") != Atom("a")
