"""Figure renderers: derived-from-code facts must be present."""

import pytest

from repro.bench.figures import (
    all_figures, cache_collision_experiment, figure1, figure2, figure3,
    figure4, figure5, figure6, figure7, render_cache_experiment,
)


class TestWordFormatFigures:
    def test_figure2_shows_tag_fields(self):
        text = figure2()
        assert "55..52" in text and "zone" in text
        assert "51..48" in text and "type" in text
        assert "value (32-bit)" in text
        # All sixteen types enumerated from the live enum.
        assert "REF" in text and "SPARE" in text

    def test_figure7_shows_address_decomposition(self):
        text = figure7()
        assert "virtual page" in text
        assert "page offset" in text
        assert "16384 words" in text or "16K" in text
        assert "4096 words (4K)" in text

    def test_figure3_covers_every_opcode(self):
        from repro.core.opcodes import Op
        text = figure3()
        for op in (Op.CALL, Op.GET_LIST, Op.SWITCH_ON_TERM, Op.MOVE2):
            assert op.name.lower() in text


class TestBlockDiagrams:
    def test_figure1_system_environment(self):
        text = figure1()
        assert "UNIX" in text and "back-end" in text.lower()

    def test_figure4_reads_live_configuration(self):
        text = figure4()
        assert "8K x 64" in text
        assert "32 MB" in text
        assert "8 zone sections" in text
        assert "80 ns" in text

    def test_figure5_execution_unit(self):
        text = figure5()
        for unit in ("ALU_C", "ALU_D", "FPU", "TVM", "RAC", "Trail"):
            assert unit in text

    def test_figure6_pipeline_registers(self):
        text = figure6()
        for register in ("P", "IB", "SP", "IR", "TP"):
            assert register in text

    def test_all_figures_concatenates_seven(self):
        text = all_figures()
        for number in range(1, 8):
            assert f"Figure {number}" in text


class TestCacheExperiment:
    @pytest.fixture(scope="class")
    def results(self):
        return cache_collision_experiment()

    def test_four_configurations(self, results):
        assert set(results) == {"plain/staggered", "plain/colliding",
                                "sectioned/staggered",
                                "sectioned/colliding"}

    def test_plain_cache_sensitive_to_initialisation(self, results):
        assert results["plain/colliding"].hit_ratio \
            < results["plain/staggered"].hit_ratio

    def test_sectioned_cache_insensitive(self, results):
        assert results["sectioned/staggered"].hit_ratio \
            == results["sectioned/colliding"].hit_ratio

    def test_sectioning_wins_outright(self, results):
        assert results["sectioned/staggered"].hit_ratio \
            > results["plain/staggered"].hit_ratio

    def test_identical_work_across_configurations(self, results):
        accesses = {r.accesses for r in results.values()}
        assert len(accesses) == 1       # timing-only differences

    def test_render_mentions_the_paper_claim(self):
        assert "dramatically" in render_cache_experiment()
