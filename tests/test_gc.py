"""Tests for the GC mark phase and the zone-monitoring trigger."""

import pytest

from repro.api import run_query
from repro.core.gc import HeapMarker, should_collect
from repro.core.tags import Zone

NREV = """
concat([], L, L).
concat([H|T], L, [H|R]) :- concat(T, L, R).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), concat(RT, [H], R).
"""


def machine_after(program, query, **kwargs):
    return run_query(program, query, **kwargs).machine


class TestMarkPhase:
    def test_empty_heap(self):
        machine = machine_after("f.", "f")
        stats = HeapMarker(machine).collect_statistics()
        assert stats.live_fraction == 1.0 or stats.heap_cells <= 4

    def test_nrev_garbage_detected(self):
        """Intermediate reversal lists are dead — the Tick observation
        the paper builds its cache design on ('many items get pushed
        onto the stacks that are never accessed again')."""
        machine = machine_after(
            NREV, "nrev([1,2,3,4,5,6,7,8,9,10,11,12,13,14,15], R)")
        stats = HeapMarker(machine).collect_statistics()
        assert stats.heap_cells > 100
        assert stats.dead_cells > stats.live_cells
        assert stats.live_fraction < 0.5

    def test_fully_live_heap(self):
        # A single built structure, still referenced: everything lives.
        machine = machine_after("dummy.", "X = f(1, g(2, [3, 4]))")
        stats = HeapMarker(machine).collect_statistics()
        assert stats.live_fraction > 0.8

    def test_mark_then_clear_restores_heap(self):
        machine = machine_after(NREV, "nrev([1,2,3,4,5], R)")
        store = machine.memory.store
        base = machine._stack_base[Zone.GLOBAL]
        before = [store.read(a) for a in range(base, machine.h)]
        marker = HeapMarker(machine)
        marker.mark()
        marker.clear()
        after = [store.read(a) for a in range(base, machine.h)]
        assert before == after

    def test_clear_count_matches_live(self):
        machine = machine_after(NREV, "nrev([1,2,3], R)")
        marker = HeapMarker(machine)
        stats = marker.mark()
        assert marker.clear() == stats.live_cells

    def test_choice_point_arguments_keep_data_live(self):
        # A pending alternative references its saved arguments.
        program = "pick(f(1)). pick(f(2)). t(X) :- pick(X)."
        machine = machine_after(program, "t(X)")
        stats = HeapMarker(machine).collect_statistics()
        assert stats.live_cells >= 1

    def test_idempotent_statistics(self):
        machine = machine_after(NREV, "nrev([1,2,3,4,5,6,7], R)")
        marker = HeapMarker(machine)
        first = marker.collect_statistics()
        second = marker.collect_statistics()
        assert first == second


class TestTrigger:
    def test_fresh_machine_does_not_collect(self):
        machine = machine_after("f.", "f")
        assert not should_collect(machine)

    def test_tiny_threshold_triggers(self):
        machine = machine_after(NREV, "nrev([1,2,3], R)")
        assert should_collect(machine, threshold=1e-9)

    def test_threshold_monotone(self):
        machine = machine_after(NREV, "nrev([1,2,3,4,5,6,7,8], R)")
        region = machine.memory.layout[Zone.GLOBAL]
        used_fraction = (machine.h - region.base) / region.size
        assert should_collect(machine, threshold=used_fraction * 0.5)
        assert not should_collect(machine, threshold=used_fraction * 2)
