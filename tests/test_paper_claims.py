"""Quantitative claims from the paper's prose, asserted on the model."""

import pytest

from repro.api import run_query
from repro.bench.programs import SUITE, SUITE_ORDER
from repro.bench.runner import SuiteRunner
from repro.core.machine import CP_ARGS, Machine
from repro.core.registers import FILE_SIZE
from repro.core.tags import Zone
from repro.memory.layout import DEFAULT_LAYOUT


class TestSection31:
    def test_register_file_is_64_by_64(self):
        """'registers in the 64 x 64 bit register file'."""
        assert FILE_SIZE == 64
        machine = Machine()
        assert len(machine.regs.cells) == 64

    def test_choice_point_is_about_ten_words(self):
        """'The size of a choice point varies with the number of
        arguments but its typical size is about 10 words.'"""
        for arity in (0, 1, 2, 3):
            assert 8 <= CP_ARGS + arity <= 13

    def test_shallow_entry_saves_exactly_three_registers(self):
        """'only three state registers are saved into shadow
        registers'."""
        program = "f(X) :- X > 0. f(_)."
        result = run_query(program, "f(1)")
        machine = result.machine
        alt, h, tr = machine.regs.shadow()
        assert alt.value and h.value and tr.value is not None


class TestSection324:
    def test_prolog_read_write_ratio_about_one(self):
        """'the ratio of reads to writes in Prolog is about 1:1 which
        is much smaller than in conventional programming languages.'"""
        runner = SuiteRunner()
        ratios = []
        for name in ("nrev1", "hanoi", "qs4", "queens"):
            result = runner.run(name, "pure")
            ratios.append(result.stats.read_write_ratio)
        average = sum(ratios) / len(ratios)
        assert 0.5 <= average <= 2.5, ratios

    def test_caches_are_8k_words_each(self):
        machine = Machine()
        assert machine.memory.data_cache.TOTAL_WORDS == 8192
        assert machine.memory.code_cache.TOTAL_WORDS == 8192


class TestSection2:
    def test_split_stack_model(self):
        """Section 2.4: 'two separate stacks for environments and
        choice points'."""
        assert DEFAULT_LAYOUT[Zone.LOCAL].base \
            != DEFAULT_LAYOUT[Zone.CONTROL].base
        program = "p(1). p(2). t(X) :- p(X), p(_)."
        machine = run_query(program, "t(X)").machine
        # Both stacks were actually used and live in their own zones.
        assert machine.b == 0 or DEFAULT_LAYOUT[Zone.CONTROL].base \
            <= machine.b < DEFAULT_LAYOUT[Zone.CONTROL].limit
        assert DEFAULT_LAYOUT[Zone.LOCAL].base \
            <= machine.e < DEFAULT_LAYOUT[Zone.LOCAL].limit

    def test_private_memory_is_32_mbytes(self):
        """Section 3.2.6: one board holds 32 MBytes."""
        machine = Machine()
        assert machine.memory.main_memory.words * 8 == 32 * 1024 * 1024


class TestSection42Methodology:
    def test_unit_clause_call_costs_five_cycles(self):
        """'a call to these predicates costs only 5 cycles (the
        minimum for a call/return sequence which creates two prefetch
        pipeline breaks)': one extra argument-free call to a unit
        clause is exactly 5 cycles."""
        one = run_query("a.", "a")
        two = run_query("a.", "a, a")
        assert two.stats.cycles - one.stats.cycles == 5

    def test_write_stub_is_a_unit_clause(self):
        """The Table 2 methodology: write/1 links as NECK+PROCEED."""
        from repro.core.opcodes import Op
        machine = run_query("t :- write(x).", "t").machine
        address = machine.predicates[("write", 1)]
        assert machine.code[address].op is Op.NECK
        assert machine.code[address + 1].op is Op.PROCEED

    def test_inferences_are_implementation_independent(self):
        """The same source yields the same count on every machine
        configuration (the point of the paper's Klips definition)."""
        from repro.baselines.plm import plm_machine
        from repro.core.symbols import SymbolTable
        program = SUITE["nrev1"].source_pure
        query = SUITE["nrev1"].query_pure
        kcm = run_query(program, query)
        plm = run_query(program, query,
                        machine=plm_machine(SymbolTable()))
        assert kcm.stats.inferences == plm.stats.inferences == 497

    def test_cut_not_counted_as_inference(self):
        """Footnote: 'The cut operation is not counted as an
        inference.'"""
        with_cut = run_query("t :- !, a. a.", "t")
        without_cut = run_query("t :- a. a.", "t")
        assert with_cut.stats.inferences \
            == without_cut.stats.inferences

    def test_is_counts_one_whatever_the_expression(self):
        """'the evaluation of an arithmetic expression (predicate
        is/2) is counted as one inference whatever the complexity'."""
        simple = run_query("t(X) :- X is 1 + 1.", "t(X)")
        complex_ = run_query(
            "t(X) :- X is ((1 + 2) * (3 + 4) - 5) // (2 + 1).", "t(X)")
        assert simple.stats.inferences == complex_.stats.inferences


class TestSection43:
    def test_word_width_is_64_bits(self):
        """Table 4 lists KCM's word as 64 bits — the widest of the
        dedicated machines."""
        from repro.bench.paper_data import TABLE4
        assert TABLE4["KCM"].word_bits == 64
        assert all(row.word_bits <= 64 for row in TABLE4.values())
