"""The shared-memory + micro-batch + streaming IPC protocol (ISSUE 7).

Covers the data-plane rebuild end to end: shared-memory segment
lifecycle (ship-once, eviction in step with the ImageCache, unlink on
close, no leaks after chaos kills), the parent-side pickle-cache
bound (the seed grew ``_payloads`` without bound and never cleared it
on close), micro-batch chunking at ``batch_max``, worker heartbeats
that actually reset, the streamed-result sender's flush cadence, and
bit-identical results across protocol configurations under chaos.

Worker processes are real ``spawn`` children, so this file keeps the
pools small and closes them promptly."""

import time
from collections import deque

import pytest

from repro.serve import (
    ChaosPolicy, QueryService, RetryPolicy, verify_chaos_invariant,
)
from repro.serve.cache import ImageCache, image_key
from repro.serve.service import (
    EnginePool, _BatchState, _ResultSender, _shm_available,
)

FACTS = "colour(red). colour(green). colour(blue)."
APPEND = ("append([], L, L). "
          "append([H|T], L, [H|R]) :- append(T, L, R).")
NREV = (APPEND +
        " nrev([], []). "
        "nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R). "
        "mklist(0, []). "
        "mklist(N, [N|T]) :- N > 0, M is N - 1, mklist(M, T). "
        "run(N, R) :- mklist(N, L), nrev(L, R).")

PROGRAMS = {"facts": FACTS, "append": APPEND, "nrev": NREV}

#: distinct single-program services keyed by suffix, used to pressure
#: a tiny cache: each is its own source text, so each compiles to its
#: own image key.
def _variant_programs(count):
    return {f"facts{i}": FACTS + f" extra{i}(x)." for i in range(count)}


def _segment_names(service):
    return [entry[0].name for entry in service._segments.values()]


def _attachable(name):
    from multiprocessing import shared_memory
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    segment.close()
    return True


# -- the parent-side pickle cache is bounded by the ImageCache ---------------

@pytest.mark.parametrize("use_shm", [False, True])
def test_derived_state_evicted_with_cache(use_shm):
    """Regression for the unbounded ``_payloads`` dict: when the
    ImageCache evicts a key, every piece of derived per-key state —
    the parent-side pickle, the shared segment, the workers' shipped
    records — must go with it, between batches."""
    if use_shm and not _shm_available():
        pytest.skip("no shared memory on this platform")
    programs = _variant_programs(6)
    cache = ImageCache(max_entries=2)
    with QueryService(programs, workers=1, cache=cache,
                      use_shared_memory=use_shm) as service:
        for i in range(6):
            assert service.run((f"facts{i}", "colour(C)")).ok
        # The cache holds at most 2 images; the service must not be
        # holding payloads/segments for the 4+ evicted keys.
        assert len(service._payloads) <= 2
        assert len(service._segments) <= 2
        live = {key for key in cache._images}
        assert set(service._payloads) <= live
        assert set(service._segments) <= live
        assert all(set(shipped) <= live
                   for shipped in service._shipped)


def test_close_clears_payloads_and_segments():
    """Regression: the seed's close() reset queues and pools but left
    ``_payloads`` populated for the life of the service object."""
    service = QueryService(PROGRAMS, workers=1, use_shared_memory=False)
    try:
        assert service.run(("facts", "colour(C)")).ok
        assert service._payloads      # fallback path populated it
    finally:
        service.close()
    assert service._payloads == {}
    assert service._segments == {}


def test_eviction_listener_removed_on_close():
    cache = ImageCache(max_entries=8)
    service = QueryService(PROGRAMS, workers=1, cache=cache)
    assert service.run(("facts", "colour(C)")).ok
    assert len(cache._eviction_listeners) == 1
    service.close()
    assert cache._eviction_listeners == []


# -- shared-memory lifecycle -------------------------------------------------

def test_shm_ships_once_and_unlinks_on_close():
    if not _shm_available():
        pytest.skip("no shared memory on this platform")
    service = QueryService(PROGRAMS, workers=2)
    try:
        assert service._use_shm
        batch = [("facts", "colour(C)"), ("append", "append([1], [2], X)"),
                 ("nrev", "run(5, R)")] * 3
        results = service.run_many(batch)
        assert all(r.ok for r in results)
        # Shared-memory mode never builds the parent-side pickle dict.
        assert service._payloads == {}
        names = _segment_names(service)
        assert len(names) == 3        # one segment per distinct image
        assert all(_attachable(name) for name in names)
    finally:
        service.close()
    # The parent owned every segment; close() unlinked them all.
    assert service._segments == {}
    assert not any(_attachable(name) for name in names)


def test_shm_survives_chaos_kill_without_leaking():
    """A chaos-killed worker dies by ``os._exit`` holding nothing: the
    respawned worker re-registers images from the same segments, the
    retried queries succeed bit-identically, and close() still unlinks
    every segment (the kill leaked no tracker registrations that could
    unlink the parent's segments early or double-free at exit)."""
    if not _shm_available():
        pytest.skip("no shared memory on this platform")
    batch = [("nrev", "run(20, R)"), ("nrev", "run(15, R)")]
    with QueryService(PROGRAMS, workers=0) as reference:
        expected = reference.run_many(batch)
    chaos = ChaosPolicy(seed=3, kill_rate=1.0, kill_window=(500, 2_000),
                        max_kills_per_slot=1)
    service = QueryService(PROGRAMS, workers=2)
    try:
        results = service.run_many(
            batch, chaos=chaos,
            retry=RetryPolicy(max_attempts=3, base_delay_s=0.01))
        health = service.health()
        assert health.crashes == 2 and health.retries == 2
        for want, got in zip(expected, results):
            assert got.ok and got.solutions == want.solutions
        names = _segment_names(service)
        assert names and all(_attachable(name) for name in names)
    finally:
        service.close()
    assert not any(_attachable(name) for name in names)


def test_queue_fallback_when_shm_disabled():
    batch = [("facts", "colour(C)"), ("nrev", "run(8, R)")]
    with QueryService(PROGRAMS, workers=0) as reference:
        expected = reference.run_many(batch)
    with QueryService(PROGRAMS, workers=1,
                      use_shared_memory=False) as service:
        assert not service._use_shm
        results = service.run_many(batch)
        assert service._segments == {}
        assert service._payloads    # the queue path pickles parent-side
    for want, got in zip(expected, results):
        assert got.ok and got.solutions == want.solutions
        assert got.stats == want.stats


# -- micro-batch chunking ----------------------------------------------------

def _chunk_state(keys):
    """A minimal _BatchState whose prepared list carries fake keys."""
    return _BatchState(
        queries=[("p", "q")] * len(keys),
        prepared=[(key, None) for key in keys],
        opts={}, timeout_s=None, results=[None] * len(keys),
        policy=None, chaos=None, batch_deadline=None,
        runnable=deque(range(len(keys))), idle=deque())


def test_next_chunk_coalesces_same_key_up_to_batch_max():
    service = QueryService(FACTS, workers=0, batch_max=4)
    try:
        state = _chunk_state(list("AABABBAAAA"))
        chunk = service._next_chunk(state)
        # Head is slot 0 (key A); same-key slots 1, 3, 6 coalesce and
        # the chunk stops at batch_max=4 even though more As remain.
        assert chunk == [0, 1, 3, 6]
        # Skipped different-key slots return to the front, in order.
        assert list(state.runnable) == [2, 4, 5, 7, 8, 9]
        chunk = service._next_chunk(state)
        assert chunk == [2, 4, 5]       # the Bs
        chunk = service._next_chunk(state)
        assert chunk == [7, 8, 9]       # the remaining As
        assert not state.runnable
    finally:
        service.close()


def test_batch_max_one_disables_coalescing():
    service = QueryService(FACTS, workers=0, batch_max=1)
    try:
        state = _chunk_state(list("AAA"))
        assert service._next_chunk(state) == [0]
        assert list(state.runnable) == [1, 2]
    finally:
        service.close()


def test_batch_max_validated():
    with pytest.raises(ValueError):
        QueryService(FACTS, workers=0, batch_max=0)


@pytest.mark.parametrize("batch_max,use_shm", [(1, True), (8, True),
                                               (8, False)])
def test_chaos_invariant_across_protocol_configs(batch_max, use_shm):
    """Micro-batched, singleton and queue-fallback protocols all
    return bit-identical results under chaos kills: the per-query
    semantics (retry, resume, accounting) survive coalescing."""
    if use_shm and not _shm_available():
        pytest.skip("no shared memory on this platform")
    from repro.bench.programs import SUITE
    corpus = ["con1", "nrev1", "times10", "log10"]
    programs = {name: SUITE[name].source_pure for name in corpus}
    batch = [(name, SUITE[name].query_pure) for name in corpus] * 3
    chaos = ChaosPolicy(seed=11, kill_rate=0.4, kill_window=(400, 4_000),
                        max_kills_per_slot=1)
    report = verify_chaos_invariant(
        programs, batch, chaos, workers=2, checkpoint_every=5_000,
        batch_max=batch_max, use_shared_memory=use_shm)
    assert report["ok"], report["mismatches"]


# -- heartbeats and streaming ------------------------------------------------

def test_on_slice_fires_at_slice_boundaries():
    """EnginePool.run calls ``on_slice`` at every cooperative stop
    boundary of a sliced run — the hook workers use for mid-query
    liveness."""
    from repro.serve.cache import default_image_cache
    image = default_image_cache().get(NREV, "run(40, R)")
    pool = EnginePool()
    ticks = []
    machine, stats, _ = pool.run(
        image_key(NREV, "run(40, R)"), image,
        {"all_solutions": False, "max_cycles": None, "recovery": False,
         "checkpoint_every": 2_000},
        on_slice=lambda: ticks.append(1))
    assert machine.solutions
    assert len(ticks) >= stats.cycles // 2_000 - 1


def test_result_sender_batches_then_streams():
    """With a fast clock the sender coalesces outcomes into one
    ``done`` message; once the flush interval passes it streams."""
    clock = [0.0]
    sent = []

    class FakeConn:
        def send(self, message):
            sent.append(message)

    sender = _ResultSender(FakeConn(), worker_id=7,
                           flush_interval_s=1.0, hb_interval_s=5.0,
                           clock=lambda: clock[0])
    sender.add(("a",))
    sender.add(("b",))
    assert sent == []                 # buffered: interval not reached
    sender.flush()
    assert sent == [("done", 7, [("a",), ("b",)])]
    clock[0] = 2.0
    sender.add(("c",))                # stale stream: flushes immediately
    assert sent[-1] == ("done", 7, [("c",)])


def test_result_sender_tick_heartbeats_when_quiet():
    clock = [0.0]
    sent = []

    class FakeConn:
        def send(self, message):
            sent.append(message)

    sender = _ResultSender(FakeConn(), worker_id=3,
                           flush_interval_s=0.05, hb_interval_s=1.0,
                           clock=lambda: clock[0])
    sender.tick()
    assert sent == []                 # quiet but not stale yet
    clock[0] = 1.5
    sender.tick()
    assert len(sent) == 1 and sent[0][0] == "hb"
    clock[0] = 1.6
    sender.tick()
    assert len(sent) == 1             # heartbeat interval not re-reached


def test_heartbeat_ages_reset_on_completed_tasks():
    """Regression for stale heartbeat reporting: the seed workers sent
    one startup herald only, so a busy worker's heartbeat age grew
    without bound.  Now every completed task refreshes it."""
    with QueryService(FACTS, workers=1) as service:
        assert service.run("colour(C)").ok
        first = service.health().heartbeat_age_s[0]
        time.sleep(0.4)
        aged = service.health().heartbeat_age_s[0]
        assert aged >= first + 0.35   # no traffic: the age just grows
        assert service.run("colour(C)").ok
        refreshed = service.health().heartbeat_age_s[0]
        assert refreshed < aged       # the completed task reset it


# -- close() under backlog ---------------------------------------------------

def test_close_drains_backlog_without_terminate():
    """Regression for slow close(): a worker with a large undelivered
    result backlog blocks at exit writing to the result pipe.  close()
    drains while joining, so the worker exits voluntarily (exit code
    0) instead of eating the grace window and a terminate()."""
    service = QueryService(FACTS, workers=1, batch_max=1)
    assert service.run("colour(C)").ok           # worker warm, image shipped
    key = image_key(FACTS, "colour(C)")
    opts = {"all_solutions": True, "max_cycles": None, "recovery": False,
            "checkpoint_every": None}
    # Bypass run_many: enqueue a chunk of 400 tasks whose results will
    # sit undelivered in the result pipe (nobody is collecting).
    service._task_queues[0].put(
        ("tasks", key, [(i, 1, opts, None) for i in range(400)]))
    patience = time.monotonic() + 30.0
    while not service._result_conns[0].poll(0):
        assert time.monotonic() < patience, "worker produced nothing"
        time.sleep(0.02)
    process = service._processes[0]
    started = time.monotonic()
    service.close()
    elapsed = time.monotonic() - started
    assert process.exitcode == 0, (
        f"worker was terminated (exit {process.exitcode}) instead of "
        f"draining to a clean exit")
    assert elapsed < 10.0
