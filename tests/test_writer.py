"""Unit tests for the term writer."""

import pytest

from repro.prolog.parser import parse_term
from repro.prolog.terms import Atom, Float, Int, Struct, Var, make_list
from repro.prolog.writer import atom_needs_quotes, term_to_text


class TestConstants:
    def test_numbers(self):
        assert term_to_text(Int(42)) == "42"
        assert term_to_text(Int(-1)) == "-1"
        assert term_to_text(Float(2.5)) == "2.5"

    def test_float_always_shows_point(self):
        assert term_to_text(Float(3.0)) == "3.0"

    def test_atoms_plain(self):
        assert term_to_text(Atom("foo")) == "foo"
        assert term_to_text(Atom("[]")) == "[]"

    def test_variables_keep_names(self):
        assert term_to_text(Var("X")) == "X" or "_" in term_to_text(
            Var("X"))


class TestQuoting:
    @pytest.mark.parametrize("name,needs", [
        ("foo", False), ("fooBar", False), ("foo_bar", False),
        ("Foo", True), ("hello world", True), ("it's", True),
        ("", True), ("+", False), (":-", False), ("[]", False),
        ("!", False), (";", False), ("123abc", True),
    ])
    def test_atom_needs_quotes(self, name, needs):
        assert atom_needs_quotes(name) == needs

    def test_quoted_mode_quotes(self):
        assert term_to_text(Atom("hello world"), quoted=True) \
            == "'hello world'"
        assert term_to_text(Atom("it's"), quoted=True) == r"'it\'s'"

    def test_unquoted_mode_raw(self):
        assert term_to_text(Atom("hello world")) == "hello world"


class TestOperators:
    def test_infix_notation(self):
        assert term_to_text(parse_term("1 + 2 * 3")) == "1 + 2 * 3"

    def test_parenthesisation_preserves_structure(self):
        assert term_to_text(parse_term("(1 + 2) * 3")) == "(1 + 2) * 3"

    def test_clause_notation(self):
        assert term_to_text(parse_term("a :- b, c")) == "a :- b,c"

    def test_prefix_minus(self):
        assert term_to_text(Struct("-", (Atom("x"),))) == "- x" \
            or term_to_text(Struct("-", (Atom("x"),))) == "-x"

    def test_canonical_fallback(self):
        assert term_to_text(Struct("foo", (Int(1), Int(2)))) \
            == "foo(1, 2)"


class TestLists:
    def test_proper_list(self):
        assert term_to_text(make_list([Int(1), Int(2)])) == "[1, 2]"

    def test_partial_list_bar(self):
        text = term_to_text(parse_term("[1, 2|T]"))
        assert text.startswith("[1, 2|")
        assert text.endswith("]")

    def test_nested(self):
        assert term_to_text(parse_term("[[a], [b, [c]]]")) \
            == "[[a], [b, [c]]]"

    def test_curly(self):
        assert term_to_text(parse_term("{a, b}")) == "{a,b}"
