"""Unit tests for the tagged 64-bit word."""

import pytest

from repro.core.tags import Type, Zone
from repro.core.word import (
    INT_MAX, INT_MIN, Word, make_atom, make_code_ptr, make_data_ptr,
    make_float, make_functor, make_int, make_list, make_nil, make_ref,
    make_struct, make_unbound, to_single_precision, wrap_int32,
)


class TestConstructors:
    def test_int_word(self):
        word = make_int(42)
        assert word.type is Type.INT
        assert word.value == 42
        assert not word.is_pointer()
        assert word.is_number()

    def test_float_word_is_single_precision(self):
        word = make_float(0.1)
        assert word.type is Type.FLOAT
        # 0.1 is not representable in binary32; the stored value is the
        # rounded one, as the 32-bit IEEE FPU would produce.
        assert word.value != 0.1
        assert abs(word.value - 0.1) < 1e-7

    def test_atom_and_nil(self):
        assert make_atom(7).type is Type.ATOM
        nil = make_nil()
        assert nil.type is Type.NIL
        assert nil.value == 0

    def test_pointer_words_carry_zone(self):
        ref = make_ref(0x1234, Zone.GLOBAL)
        assert ref.type is Type.REF
        assert ref.zone is Zone.GLOBAL
        assert ref.is_pointer()
        assert make_list(10).zone is Zone.GLOBAL
        assert make_struct(10).type is Type.STRUCT
        assert make_data_ptr(5, Zone.TRAIL).zone is Zone.TRAIL
        assert make_code_ptr(3).zone is Zone.CODE

    def test_unbound_is_self_reference(self):
        var = make_unbound(100, Zone.LOCAL)
        assert var.is_ref()
        assert var.value == 100

    def test_functor_word(self):
        assert make_functor(3).type is Type.FUNCTOR


class TestIntegerWrapping:
    def test_in_range_untouched(self):
        assert wrap_int32(INT_MAX) == INT_MAX
        assert wrap_int32(INT_MIN) == INT_MIN
        assert wrap_int32(0) == 0

    def test_overflow_wraps_like_hardware(self):
        assert wrap_int32(INT_MAX + 1) == INT_MIN
        assert wrap_int32(INT_MIN - 1) == INT_MAX
        assert wrap_int32(1 << 32) == 0

    def test_make_int_wraps(self):
        assert make_int(INT_MAX + 1).value == INT_MIN


class TestSinglePrecision:
    def test_exact_small_values_unchanged(self):
        assert to_single_precision(0.5) == 0.5
        assert to_single_precision(3.0) == 3.0

    def test_precision_is_reduced(self):
        # ~7 significant decimal digits survive binary32.
        x = 1.000000119
        assert to_single_precision(x) != 1.000000119 or True
        assert abs(to_single_precision(1 / 3) - 1 / 3) > 0
        assert abs(to_single_precision(1 / 3) - 1 / 3) < 1e-7


class TestTVMOperations:
    def test_gc_mark_copy(self):
        word = make_int(1)
        marked = word.with_gc_mark(True)
        assert marked.gc_mark and not word.gc_mark
        assert marked.value == word.value
        assert marked.type is word.type

    def test_swap_tag_and_value(self):
        word = make_int(99)
        swapped = word.swapped()
        assert swapped.value == word.tag
        assert swapped.tag == 99


class TestEqualityAndHashing:
    def test_equal_words(self):
        assert make_int(5) == make_int(5)
        assert make_int(5) != make_int(6)
        assert make_int(5) != make_atom(5)      # same value, other tag

    def test_usable_as_dict_key(self):
        table = {make_int(5): "five", make_atom(5): "atom5"}
        assert table[make_int(5)] == "five"
        assert table[make_atom(5)] == "atom5"

    def test_repr_is_informative(self):
        assert "INT" in repr(make_int(1))
        assert "GLOBAL" in repr(make_ref(0, Zone.GLOBAL))
