"""Ablation harness: semantics preserved, units pay for themselves."""

import pytest

from repro.bench.ablations import (
    ABLATIONS, AblationRow, render_ablation, run_ablation,
)

FAST = ["con1", "nrev1"]


class TestHarness:
    def test_unknown_ablation_rejected(self):
        with pytest.raises(ValueError):
            run_ablation("hyperdrive")

    def test_row_arithmetic(self):
        row = AblationRow("x", baseline_cycles=100, ablated_cycles=150)
        assert row.slowdown == pytest.approx(1.5)
        assert AblationRow("x", 0, 10).slowdown == 1.0

    @pytest.mark.parametrize("name", sorted(ABLATIONS))
    def test_every_ablation_runs(self, name):
        rows = run_ablation(name, FAST)
        assert [r.program for r in rows] == FAST
        for row in rows:
            assert row.baseline_cycles > 0
            assert row.ablated_cycles > 0

    def test_render(self):
        text = render_ablation("mwac", FAST)
        assert "slowdown" in text and "mean" in text


class TestEffects:
    def test_mwac_slows_every_program(self):
        for row in run_ablation("mwac", FAST):
            assert row.slowdown > 1.0, row.program

    def test_shallow_ablation_never_speeds_up(self):
        for row in run_ablation("shallow", ["nrev1", "pri2"]):
            assert row.slowdown >= 1.0, row.program

    def test_trail_ablation_taxes_binding_heavy_programs(self):
        rows = {r.program: r for r in run_ablation("trail", ["nrev1"])}
        assert rows["nrev1"].slowdown > 1.05
