"""Machine-level control tests: calls, backtracking, cut, solutions."""

import pytest

from repro.api import run_query
from repro.errors import ExistenceError, LinkError
from tests.conftest import all_bindings, first_binding


class TestDeterministicExecution:
    def test_fact_lookup(self):
        assert first_binding("f(a).", "f(X)", "X") == "a"

    def test_chain_of_calls(self):
        program = "a(1). b(X) :- a(X). c(X) :- b(X)."
        assert first_binding(program, "c(X)", "X") == "1"

    def test_environment_nesting(self):
        program = """
        f(X, Y) :- g(X), h(Y).
        g(g1). h(h1).
        """
        result = run_query(program, "f(X, Y)")
        assert result.bindings_text() == "X = g1, Y = h1"

    def test_deep_recursion(self):
        program = """
        count(0) .
        count(N) :- N > 0, M is N - 1, count(M).
        """
        assert run_query(program, "count(500)").succeeded


class TestBacktracking:
    def test_clause_order_respected(self, member_program):
        values = all_bindings(member_program, "member(X, [a,b,c])", "X")
        assert values == ["a", "b", "c"]

    def test_failure_falls_through_clauses(self):
        program = "f(1, one). f(2, two). f(3, three)."
        assert first_binding(program, "f(3, R)", "R") == "three"

    def test_conjunction_backtracks_left_goal(self, member_program):
        program = member_program + "even(2). even(4)."
        values = all_bindings(program,
                              "member(X, [1,2,3,4]), even(X)", "X")
        assert values == ["2", "4"]

    def test_cross_product(self, member_program):
        result = run_query(member_program,
                           "member(X, [1,2]), member(Y, [a,b])",
                           all_solutions=True)
        pairs = [(s["X"].value, s["Y"].name) for s in result.solutions]
        assert pairs == [(1, "a"), (1, "b"), (2, "a"), (2, "b")]

    def test_no_solution(self, member_program):
        result = run_query(member_program, "member(z, [a,b])")
        assert not result.succeeded
        assert result.machine.exhausted

    def test_bindings_undone_between_solutions(self, member_program):
        # If the trail failed to unbind, later solutions would see stale
        # values.
        values = all_bindings(member_program,
                              "member(X, [1,2,3]), X > 1", "X")
        assert values == ["2", "3"]


class TestCut:
    PROGRAM = """
    first([X|_], X) :- !.
    first(_, none).

    classify(X, neg) :- X < 0, !.
    classify(0, zero) :- !.
    classify(_, pos).

    once_member(X, [X|_]) :- !.
    once_member(X, [_|T]) :- once_member(X, T).
    """

    def test_neck_cut_commits(self):
        assert all_bindings(self.PROGRAM, "first([a,b], X)", "X") == ["a"]

    def test_guarded_cut(self):
        assert first_binding(self.PROGRAM, "classify(-4, R)", "R") == "neg"
        assert first_binding(self.PROGRAM, "classify(0, R)", "R") == "zero"
        assert first_binding(self.PROGRAM, "classify(9, R)", "R") == "pos"

    def test_cut_prunes_alternatives_of_callee_only(self):
        program = self.PROGRAM + "p(1). p(2)."
        values = all_bindings(program,
                              "p(X), once_member(a, [a,b,a])", "X")
        # once_member is deterministic; p still backtracks.
        assert values == ["1", "2"]

    def test_deep_cut(self):
        program = """
        f(X, R) :- g(X), !, R = found.
        f(_, notfound).
        g(1). g(2).
        """
        # The cut removes g's alternatives AND f's second clause.
        values = all_bindings(program, "f(1, R)", "R")
        assert values == ["found"]

    def test_cut_in_last_clause_is_safe(self):
        program = "f(a). f(b) :- !."
        assert all_bindings(program, "f(X)", "X") == ["a", "b"]


class TestControlConstructs:
    def test_if_then_else_then_branch(self):
        program = "test(X, R) :- ( X > 0 -> R = pos ; R = nonpos )."
        assert first_binding(program, "test(3, R)", "R") == "pos"
        assert first_binding(program, "test(-3, R)", "R") == "nonpos"

    def test_if_then_else_condition_committed(self):
        # The condition succeeds once; no backtracking into it.
        program = """
        m(1). m(2).
        t(R) :- ( m(X) -> R = X ; R = none ).
        """
        assert all_bindings(program, "t(R)", "R") == ["1"]

    def test_bare_if_then_fails_without_else(self):
        program = "t(R) :- ( fail -> R = yes )."
        assert not run_query(program, "t(R)").succeeded

    def test_negation_as_failure(self, member_program):
        program = member_program
        assert run_query(program, "\\+ member(z, [a,b])").succeeded
        assert not run_query(program, "\\+ member(a, [a,b])").succeeded

    def test_negation_leaves_no_bindings(self, member_program):
        # \+ m(X) with unbound X fails (m has solutions), and X stays
        # unbound afterwards in the failure-driven sense.
        result = run_query(member_program, "\\+ member(X, [a])")
        assert not result.succeeded

    def test_disjunction_both_branches(self):
        program = "t(R) :- ( R = left ; R = right )."
        assert all_bindings(program, "t(R)", "R") == ["left", "right"]

    def test_true_and_fail(self):
        assert run_query("t :- true.", "t").succeeded
        assert not run_query("t :- fail.", "t").succeeded


class TestErrors:
    def test_undefined_predicate_is_link_error(self):
        with pytest.raises(LinkError):
            run_query("f :- undefined_thing(1).", "f")

    def test_metacall_unknown_predicate(self):
        with pytest.raises(ExistenceError):
            run_query("f(G) :- call(G).", "f(nonexistent)")


class TestLastCallOptimisation:
    def test_tail_recursion_constant_local_stack(self):
        program = """
        loop(0).
        loop(N) :- N > 0, M is N - 1, loop(M).
        """
        result = run_query(program, "loop(200)")
        machine = result.machine
        # With LCO the local stack never grows with the recursion depth:
        # final local top is near the base.
        from repro.core.tags import Zone
        base = machine._stack_base[Zone.LOCAL]
        assert machine.local_top() - base < 32
