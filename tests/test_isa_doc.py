"""The checked-in instruction reference must match the generator."""

from pathlib import Path

from repro.core.isa_doc import _DESCRIPTIONS, render
from repro.core.opcodes import Op

DOC = Path(__file__).resolve().parent.parent / "docs" / "INSTRUCTION_SET.md"


def test_reference_is_in_sync():
    assert DOC.read_text() == render(), (
        "regenerate with: python -m repro.core.isa_doc "
        "> docs/INSTRUCTION_SET.md")


def test_every_opcode_documented():
    for op in Op:
        assert op in _DESCRIPTIONS
        assert _DESCRIPTIONS[op].strip()


def test_render_is_a_markdown_table():
    text = render()
    assert text.count("|") > 6 * len(Op)
    for op in Op:
        assert f"`{op.name.lower()}`" in text
