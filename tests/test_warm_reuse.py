"""Warm-reuse determinism (ISSUE 3): a machine returned to service by
``reset_for_reuse`` must be observationally indistinguishable from a
fresh one — bit-identical ``RunStats`` and identical solutions on
every program of the bench corpus, including runs with injected
faults routed through the recovery subsystem.  This is the contract
the warm machine pool (:mod:`repro.serve`) is built on: which worker
(and which machine incarnation) serves a query must never show up in
the results."""

import pytest

from repro.bench.programs import SUITE, SUITE_ORDER
from repro.core.machine import Machine
from repro.prolog.writer import term_to_text
from repro.recovery import FaultInjector, install_default_recovery
from repro.serve import ImageCache

#: one cache for the module: compiling each suite program once is the
#: production configuration (and keeps the test fast).
CACHE = ImageCache()


def _load(name):
    bench = SUITE[name]
    image = CACHE.get(bench.source_pure, bench.query_pure)
    machine = Machine(symbols=image.symbols)
    image.install(machine)
    return bench, image, machine


def _run(machine, image, bench):
    stats = machine.run(image.entry, collect_all=bench.all_solutions,
                        answer_names=image.query_variable_names)
    answers = tuple(tuple((n, term_to_text(t)) for n, t in sol.items())
                    for sol in machine.solutions)
    return stats, answers


@pytest.mark.parametrize("name", SUITE_ORDER)
def test_reused_machine_matches_fresh(name):
    bench, image, reused = _load(name)
    first = _run(reused, image, bench)
    reused.reset_for_reuse()
    second = _run(reused, image, bench)

    _, _, fresh_a = _load(name)
    _, _, fresh_b = _load(name)
    expected_first = _run(fresh_a, image, bench)
    expected_second = _run(fresh_b, image, bench)

    assert first == expected_first
    assert second == expected_second
    assert first == second, (
        f"{name}: run after reset_for_reuse diverged from a fresh run")


def test_reused_machine_leaves_no_residue(name="nrev1"):
    bench, image, machine = _load(name)
    _run(machine, image, bench)
    machine.reset_for_reuse()
    memory = machine.memory
    assert not memory.store._chunks
    assert memory.store.uninitialised_reads == 0
    assert memory.mmu.next_free_page == 0
    assert memory.mmu.resident_pages() == []
    assert memory.mmu.resident_pages(code_space=True) == []
    assert set(memory.data_cache.tags) == {None}
    assert set(memory.code_cache.tags) == {None}
    assert memory.data_cache.stats.accesses == 0
    for zone, region in memory.zones._layout.items():
        entry = memory.zones.entries[zone]
        assert (entry.min_address, entry.max_address) \
            == (region.base, region.limit)
    assert all(cell.value == 0 for cell in machine.regs.cells)


@pytest.mark.parametrize("plan", [
    dict(seed=11, page_faults=2, zone_squeezes=1, spurious=1),
    dict(seed=3, page_faults=0, zone_squeezes=2, spurious=0),
])
def test_reused_machine_matches_fresh_under_injected_faults(plan):
    """The recovery paths dirty exactly the state reset_for_reuse must
    repair (moved zone limits, unmapped/premapped pages, the
    demand-paging switch), so the fault corpus is the sharp edge of
    the determinism guarantee."""
    name = "qs4"
    horizon = 20_000

    bench, image, reused = _load(name)
    install_default_recovery(reused)
    FaultInjector(horizon=horizon, **plan).attach(reused)
    first = _run(reused, image, bench)
    assert reused.stats.faults_injected > 0

    # reset_for_reuse detaches the consumed injector; re-attach a
    # rewound one for the replay (the documented faulted-replay idiom).
    reused.reset_for_reuse()
    assert reused.injector is None
    replay = FaultInjector(horizon=horizon, **plan)
    replay.attach(reused)
    second = _run(reused, image, bench)

    fresh = Machine(symbols=image.symbols)
    image.install(fresh)
    install_default_recovery(fresh)
    FaultInjector(horizon=horizon, **plan).attach(fresh)
    expected = _run(fresh, image, bench)

    assert first == expected
    assert second == expected


def test_rewound_injector_replays_identically():
    name = "qs4"
    plan = dict(seed=11, page_faults=2, zone_squeezes=1, spurious=1)
    bench, image, machine = _load(name)
    install_default_recovery(machine)
    injector = FaultInjector(horizon=20_000, **plan)
    injector.attach(machine)
    first = _run(machine, image, bench)
    fired = [(ev.kind, ev.cycle, ev.detail) for ev in injector.fired]

    machine.reset_for_reuse()
    injector.rewind()
    injector.attach(machine)
    second = _run(machine, image, bench)
    assert second == first
    assert [(ev.kind, ev.cycle, ev.detail)
            for ev in injector.fired] == fired
