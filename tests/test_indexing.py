"""First-argument indexing: structure of the emitted index and its
run-time effect (deterministic dispatch avoids the try chain)."""

import pytest

from repro.api import run_query
from repro.compiler.indexing import compile_predicate
from repro.compiler.normalize import group_program, normalize_program
from repro.core.instruction import Instruction
from repro.core.opcodes import Op
from repro.core.symbols import SymbolTable
from repro.prolog.parser import parse_program


def predicate_ops(text):
    program = normalize_program(parse_program(text))
    groups = group_program(program)
    (name, arity), clauses = next(iter(groups.items()))
    code = compile_predicate(name, arity, clauses, SymbolTable())
    return [i.op for i in code.items if isinstance(i, Instruction)]


class TestIndexStructure:
    def test_single_clause_has_no_index(self):
        ops = predicate_ops("f(a).")
        assert Op.SWITCH_ON_TERM not in ops
        assert Op.TRY_ME_ELSE not in ops

    def test_two_clauses_get_switch_and_chain(self):
        ops = predicate_ops("f(a). f(b).")
        assert Op.SWITCH_ON_TERM in ops
        assert Op.SWITCH_ON_CONSTANT in ops
        assert Op.TRY_ME_ELSE in ops
        assert Op.TRUST_ME in ops

    def test_all_var_heads_skip_the_switch(self):
        ops = predicate_ops("f(X) :- a(X). f(X) :- b(X). a(1). b(2).")
        # first group is f/1 with two var-headed clauses.
        assert Op.SWITCH_ON_TERM not in ops

    def test_structure_heads_get_structure_switch(self):
        ops = predicate_ops("g(f(X)) :- h(X). g(k(X)) :- h(X). h(_).")
        assert Op.SWITCH_ON_STRUCTURE in ops

    def test_mixed_buckets_get_try_chains(self):
        # Two clauses share the constant 'a': that bucket is a chain.
        ops = predicate_ops("f(a, 1). f(a, 2). f(b, 3).")
        assert Op.TRY in ops
        assert Op.TRUST in ops

    def test_switch_table_sizes_count_as_words(self):
        program = normalize_program(parse_program(
            "f(a). f(b). f(c). f(d)."))
        groups = group_program(program)
        code = compile_predicate("f", 1, groups[("f", 1)], SymbolTable())
        assert code.word_count > code.instruction_count


class TestIndexingBehaviour:
    DB = """
    capital(france, paris).
    capital(italy, rome).
    capital(spain, madrid).
    capital(poland, warsaw).
    """

    def test_bound_lookup_is_deterministic(self):
        result = run_query(self.DB, "capital(spain, C)")
        assert result.bindings_text() == "C = madrid"
        # Direct dispatch: no choice point, no backtracking.
        assert result.stats.choice_points_created == 0
        assert result.stats.deep_fails + result.stats.shallow_fails == 0

    def test_unbound_scan_still_enumerates(self):
        result = run_query(self.DB, "capital(X, Y)", all_solutions=True)
        assert len(result.solutions) == 4

    def test_unknown_key_fails_fast(self):
        result = run_query(self.DB, "capital(atlantis, C)")
        assert not result.succeeded

    def test_type_dispatch(self):
        program = """
        kind([], empty_list).
        kind([_|_], cons).
        kind(X, integer) :- integer(X).
        kind(f(_), structure).
        """
        # Wait: integer clause head is var -- it joins every bucket.
        assert run_query(program, "kind([], K)").bindings_text() \
            == "K = empty_list"
        assert run_query(program, "kind([1], K)").bindings_text() \
            == "K = cons"
        assert run_query(program, "kind(f(2), K)",
                         all_solutions=True).solutions[-1]["K"].name \
            == "structure"

    def test_indexing_does_not_change_solution_order(self):
        program = "p(a, 1). p(X, 2) :- atom(X). p(a, 3)."
        values = [s["R"].value for s in run_query(
            program, "p(a, R)", all_solutions=True).solutions]
        assert values == [1, 2, 3]

    def test_query_benchmark_indexing_effect(self):
        """The paper credits query's speed to KCM indexing: bound
        lookups of pop/area must create no choice points."""
        from repro.bench.programs import QUERY
        result = run_query(QUERY, "pop(japan, P), area(japan, A)")
        assert result.stats.choice_points_created == 0
        assert result.bindings_text() == "P = 1097, A = 148"
