"""Unit tests for the Prolog tokenizer."""

import pytest

from repro.errors import PrologSyntaxError
from repro.prolog.lexer import tokenize


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text) if t.kind != "end"]


class TestBasicTokens:
    def test_atoms_and_variables(self):
        assert kinds("foo Bar _baz _") == [
            ("atom", "foo"), ("var", "Bar"), ("var", "_baz"), ("var", "_")]

    def test_integers(self):
        assert kinds("0 42 123456") == [
            ("int", 0), ("int", 42), ("int", 123456)]

    def test_floats(self):
        values = [v for _, v in kinds("1.5 0.25 2.0e3 1e-2 3.14E2")]
        assert values == [1.5, 0.25, 2000.0, 0.01, 314.0]

    def test_dot_not_float_without_digit(self):
        # "1." is integer one followed by clause end.
        tokens = kinds("1. ")
        assert tokens == [("int", 1), ("punct", ".")]

    def test_character_code(self):
        assert kinds("0'a 0' 0'\\n")[0] == ("int", ord("a"))
        assert kinds("0'a")[0] == ("int", 97)

    def test_radix_integers(self):
        assert kinds("0xff 0o17 0b101") == [
            ("int", 255), ("int", 15), ("int", 5)]

    def test_symbolic_atoms_maximal_munch(self):
        assert kinds(":- ?- --> \\+ =..") == [
            ("atom", ":-"), ("atom", "?-"), ("atom", "-->"),
            ("atom", "\\+"), ("atom", "=..")]

    def test_solo_characters(self):
        assert kinds("! ; , | ( ) [ ] { }") == [
            ("atom", "!"), ("atom", ";"), ("punct", ","), ("punct", "|"),
            ("punct", "("), ("punct", ")"), ("punct", "["), ("punct", "]"),
            ("punct", "{"), ("punct", "}")]


class TestQuoting:
    def test_quoted_atom(self):
        assert kinds("'hello world'") == [("atom", "hello world")]

    def test_quoted_atom_with_escapes(self):
        assert kinds(r"'a\nb'") == [("atom", "a\nb")]
        assert kinds(r"'tab\there'") == [("atom", "tab\there")]

    def test_doubled_quote(self):
        assert kinds("'it''s'") == [("atom", "it's")]

    def test_string_token(self):
        assert kinds('"abc"') == [("string", "abc")]

    def test_hex_escape(self):
        assert kinds(r"'\x41\'") == [("atom", "A")]

    def test_unterminated_quote_raises(self):
        with pytest.raises(PrologSyntaxError):
            tokenize("'oops")


class TestCommentsAndLayout:
    def test_line_comment(self):
        assert kinds("a % comment\nb") == [("atom", "a"), ("atom", "b")]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [("atom", "a"), ("atom", "b")]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(PrologSyntaxError):
            tokenize("a /* never closed")

    def test_layout_before_flag(self):
        tokens = tokenize("f(X) g (Y)")
        # '(' after f: no layout; '(' after g: layout.
        parens = [t for t in tokens if t.text == "("]
        assert not parens[0].layout_before
        assert parens[1].layout_before

    def test_line_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].line == 1 and tokens[0].column == 1
        assert tokens[1].line == 2 and tokens[1].column == 3


class TestClauseEnd:
    def test_end_dot_after_atom(self):
        assert kinds("foo.") == [("atom", "foo"), ("punct", ".")]

    def test_end_dot_after_symbolic(self):
        # The '.' of "b." terminates the clause even glued to an atom.
        tokens = kinds("a:-b.")
        assert tokens[-1] == ("punct", ".")

    def test_unexpected_character(self):
        with pytest.raises(PrologSyntaxError):
            tokenize("\x01")
