"""The parallel-service bench regression gates: the speedup-vs-naive
dimension only compares like batches, the qps-vs-cached data-plane
dimension transfers across batch mixes, and the parallelism-pays gate
reads the measured verdicts.  Pure JSON plumbing — no pools spawned."""

import json

import pytest

from repro.bench.parallel_service import check_beats_cached, check_regression

BATCH = {"queries": 50, "programs": ["con1"], "short_reps": 8}
OTHER_BATCH = {"queries": 25, "programs": ["con1"], "short_reps": 4}


def _report(batch, speedup, qps_ratio, beats=True):
    worker_mode = {"qps_vs_cached": qps_ratio,
                   "queries_per_second": 500.0 * qps_ratio,
                   "beats_cached": beats}
    return {
        "batch": dict(batch),
        "gate": {"mode": "service_w4", "workers": 4,
                 "speedup_vs_naive": speedup,
                 "beats_cached": {"service_w2": beats,
                                  "service_w4": beats}},
        "modes": {"service_w4": dict(worker_mode),
                  "service_w2": dict(worker_mode),
                  "cached_sequential": {"qps_vs_cached": 1.0,
                                        "queries_per_second": 500.0}},
    }


@pytest.fixture
def baseline(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(_report(BATCH, 15.0, 1.0)))
    return str(path)


def test_same_batch_gates_speedup(baseline):
    message = check_regression(_report(BATCH, 14.0, 0.95), baseline,
                               max_regression=0.35)
    assert "speedup" in message
    with pytest.raises(AssertionError, match="regression"):
        check_regression(_report(BATCH, 9.0, 0.95), baseline,
                         max_regression=0.35)


def test_different_batch_skips_speedup_dimension(baseline):
    # 9.0x would trip the same-batch floor (15.0 * 0.65 = 9.75), but a
    # quick smoke measures a different mix, so it must not gate there.
    message = check_regression(_report(OTHER_BATCH, 9.0, 0.95), baseline,
                               max_regression=0.35)
    assert "different batch" in message


def test_qps_vs_cached_gates_across_batches(baseline):
    with pytest.raises(AssertionError, match="data-plane"):
        check_regression(_report(OTHER_BATCH, 9.0, 0.5), baseline,
                         max_regression=0.35)


def test_beats_cached_reads_verdicts():
    assert "beats" in check_beats_cached(_report(BATCH, 15.0, 1.1),
                                         min_workers=2)
    with pytest.raises(AssertionError):
        check_beats_cached(_report(BATCH, 15.0, 0.9, beats=False),
                           min_workers=2)
