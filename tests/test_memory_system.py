"""Integration tests: store + zones + caches + MMU + main memory."""

import pytest

from repro.core.tags import Type, Zone
from repro.core.word import ZERO_WORD, make_int
from repro.errors import ZoneTrap
from repro.memory.layout import (
    DATA_SPACE_WORDS, DEFAULT_LAYOUT, Region, initial_stack_pointer,
    validate_layout,
)
from repro.memory.main_memory import MainMemory, MemoryTiming
from repro.memory.memory_system import MemorySystem
from repro.memory.store import DataStore

GLOBAL_BASE = DEFAULT_LAYOUT[Zone.GLOBAL].base


class TestDataStore:
    def test_read_back_what_was_written(self):
        store = DataStore()
        store.write(GLOBAL_BASE, make_int(7))
        assert store.read(GLOBAL_BASE) == make_int(7)

    def test_uninitialised_reads_are_counted(self):
        store = DataStore()
        assert store.read(12345) == ZERO_WORD
        assert store.uninitialised_reads == 1

    def test_out_of_space_write_rejected(self):
        store = DataStore()
        with pytest.raises(IndexError):
            store.write(DATA_SPACE_WORDS + 1, make_int(1))

    def test_initialised_flag(self):
        store = DataStore()
        assert not store.initialised(GLOBAL_BASE)
        store.write(GLOBAL_BASE, make_int(1))
        assert store.initialised(GLOBAL_BASE)


class TestMemoryTiming:
    def test_one_word_needs_two_bus_halves(self):
        timing = MemoryTiming(first_access_cycles=3, page_mode_cycles=2)
        assert timing.word_cycles(1) == 3 + 2

    def test_burst_uses_page_mode(self):
        timing = MemoryTiming(first_access_cycles=3, page_mode_cycles=2)
        assert timing.word_cycles(4) == 3 + 7 * 2

    def test_traffic_counters(self):
        memory = MainMemory()
        memory.read_words(2)
        memory.write_words(1)
        assert memory.words_read == 2
        assert memory.words_written == 1
        memory.reset_statistics()
        assert memory.words_read == 0


class TestLayout:
    def test_default_layout_is_valid(self):
        validate_layout(DEFAULT_LAYOUT)

    def test_overlap_rejected(self):
        bad = dict(DEFAULT_LAYOUT)
        bad[Zone.LOCAL] = Region(Zone.LOCAL,
                                 DEFAULT_LAYOUT[Zone.GLOBAL].base, 0x4000)
        with pytest.raises(ValueError):
            validate_layout(bad)

    def test_misaligned_base_rejected(self):
        bad = dict(DEFAULT_LAYOUT)
        bad[Zone.SYSTEM] = Region(Zone.SYSTEM, 0x380001, 0x1000)
        with pytest.raises(ValueError):
            validate_layout(bad)

    def test_staggered_pointers_differ_modulo_cache_section(self):
        offsets = set()
        for zone in (Zone.GLOBAL, Zone.LOCAL, Zone.CONTROL, Zone.TRAIL):
            pointer = initial_stack_pointer(DEFAULT_LAYOUT[zone],
                                            staggered=True)
            offsets.add(pointer % 1024)
        assert len(offsets) == 4

    def test_colliding_pointers_share_cache_index(self):
        offsets = set()
        for zone in (Zone.GLOBAL, Zone.LOCAL, Zone.CONTROL, Zone.TRAIL):
            pointer = initial_stack_pointer(DEFAULT_LAYOUT[zone],
                                            staggered=False)
            offsets.add(pointer % 1024)
        assert offsets == {0}


class TestMemorySystem:
    def test_read_write_roundtrip_with_cycles(self):
        system = MemorySystem()
        cycles = system.data_write(GLOBAL_BASE, make_int(3), Zone.GLOBAL)
        assert cycles >= 1
        word, cycles = system.data_read(GLOBAL_BASE, Zone.GLOBAL)
        assert word == make_int(3)
        assert cycles == 1            # hit after the write allocation

    def test_zone_check_guards_the_data_path(self):
        system = MemorySystem()
        with pytest.raises(ZoneTrap):
            system.data_read(GLOBAL_BASE, Zone.GLOBAL, Type.FLOAT)

    def test_timing_disabled_mode(self):
        system = MemorySystem(timing_enabled=False)
        assert system.data_write(GLOBAL_BASE, make_int(1),
                                 Zone.GLOBAL) == 1
        assert system.code_fetch(0) == 0

    def test_code_fetch_miss_then_hits(self):
        system = MemorySystem()
        assert system.code_fetch(10) > 0
        assert system.code_fetch(10) == 0

    def test_statistics_snapshot(self):
        system = MemorySystem()
        system.data_write(GLOBAL_BASE, make_int(1), Zone.GLOBAL)
        stats = system.statistics()
        assert stats["data_accesses"] == 1
        system.reset_statistics()
        assert system.statistics()["data_accesses"] == 0

    def test_page_fault_cycles_surface_in_penalty(self):
        system = MemorySystem(page_fault_cycles=500)
        word_cycles = system.data_write(GLOBAL_BASE, make_int(1),
                                        Zone.GLOBAL)
        assert word_cycles > 500      # cold miss + host paging round trip
