"""Unit tests for clause normalisation and control-construct lowering."""

import pytest

from repro.compiler.normalize import (
    flatten_conjunction, group_program, normalize_program,
)
from repro.errors import CompileError
from repro.prolog.parser import parse_program, parse_term
from repro.prolog.terms import Atom


def normalize(text):
    return normalize_program(parse_program(text))


class TestFlattening:
    def test_single_goal(self):
        assert flatten_conjunction(parse_term("a")) == [Atom("a")]

    def test_right_leaning_conjunction(self):
        goals = flatten_conjunction(parse_term("a, b, c"))
        assert [g.name for g in goals] == ["a", "b", "c"]

    def test_left_leaning_conjunction(self):
        goals = flatten_conjunction(parse_term("(a, b), c"))
        assert [g.name for g in goals] == ["a", "b", "c"]


class TestClauses:
    def test_fact_has_empty_body(self):
        program = normalize("f(a).")
        assert program.clauses[0].goals == []

    def test_rule_body_flattened(self):
        program = normalize("f :- a, b, c.")
        assert len(program.clauses[0].goals) == 3

    def test_grouping_preserves_order(self):
        program = normalize("f(1). g. f(2). f(3).")
        groups = group_program(program)
        f_clauses = groups[("f", 1)]
        values = [c.head.args[0].value for c in f_clauses]
        assert values == [1, 2, 3]

    def test_directive_rejected(self):
        with pytest.raises(CompileError):
            normalize(":- initialization(main).")

    def test_number_clause_rejected(self):
        with pytest.raises(CompileError):
            normalize("42.")

    def test_number_goal_rejected(self):
        with pytest.raises(CompileError):
            normalize("f :- 42.")


class TestControlLowering:
    def test_disjunction_becomes_two_aux_clauses(self):
        program = normalize("f(X) :- ( a(X) ; b(X) ).")
        groups = group_program(program)
        aux = [key for key in groups if key[0].startswith("$(or)")]
        assert len(aux) == 1
        assert len(groups[aux[0]]) == 2
        # The f clause calls the aux predicate.
        f_goals = groups[("f", 1)][0].goals
        assert f_goals[0].name == aux[0][0]

    def test_if_then_else_uses_cut(self):
        program = normalize("f(X) :- ( t(X) -> a ; b ).")
        groups = group_program(program)
        aux = next(key for key in groups if key[0].startswith("$(or)"))
        first_clause = groups[aux][0]
        assert Atom("!") in first_clause.goals

    def test_bare_if_then(self):
        program = normalize("f :- ( a -> b ).")
        groups = group_program(program)
        aux = next(key for key in groups if key[0].startswith("$(ite)"))
        assert Atom("!") in groups[aux][0].goals
        assert len(groups[aux]) == 1

    def test_negation_as_failure(self):
        program = normalize("f(X) :- \\+ p(X).")
        groups = group_program(program)
        aux = next(key for key in groups if key[0].startswith("$(not)"))
        clauses = groups[aux]
        assert len(clauses) == 2
        assert clauses[0].goals[-2:] == [Atom("!"), Atom("fail")]
        assert clauses[1].goals == []

    def test_aux_head_carries_the_goal_variables(self):
        program = normalize("f(X, Y) :- ( a(X) ; b(Y) ).")
        groups = group_program(program)
        aux = next(key for key in groups if key[0].startswith("$(or)"))
        assert aux[1] == 2          # both X and Y are passed

    def test_nested_control(self):
        program = normalize("f :- ( a ; ( b -> c ; d ) ).")
        groups = group_program(program)
        aux_names = [key for key in groups if key[0].startswith("$(")]
        assert len(aux_names) == 2

    def test_variable_goal_becomes_metacall(self):
        program = normalize("f(G) :- G.")
        goal = program.clauses[0].goals[0]
        assert goal.name == "call"
        assert goal.arity == 1
