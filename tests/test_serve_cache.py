"""The compile-once image cache and the pickle contracts behind it
(ISSUE 3): zero compiler work on repeat queries, round-trippable
images/words/stats/symbols, machines that pickle with their fused
closures dropped, and detachable query results."""

import gc
import pickle
import weakref

import pytest

from repro.api import QueryResult, run_query
from repro.compiler.linker import Linker
from repro.core.machine import Machine
from repro.core.statistics import RunStats
from repro.core.symbols import SymbolTable
from repro.core.tags import Zone
from repro.core.word import make_atom, make_int, make_list, make_unbound
from repro.serve import ImageCache, image_key

APPEND = ("append([], L, L). "
          "append([H|T], L, [H|R]) :- append(T, L, R).")

#: exercises escape builtins (including the type tests, which used to
#: be unpicklable closures) alongside plain clause code.
TYPEY = ("classify(X, var) :- var(X). "
         "classify(X, num) :- number(X). "
         "classify(X, atom) :- atom(X).")


# -- compile-once behaviour --------------------------------------------------

class TestCompileOnce:

    def test_run_query_second_call_does_zero_compiler_work(self):
        program = "cache_probe_p(1). cache_probe_p(2)."
        first = run_query(program, "cache_probe_p(X)", all_solutions=True)
        links_after_first = Linker.links_performed
        second = run_query(program, "cache_probe_p(X)", all_solutions=True)
        assert Linker.links_performed == links_after_first
        assert second.solutions == first.solutions
        assert second.stats == first.stats

    def test_use_cache_false_recompiles(self):
        program = "cache_probe_q(a)."
        run_query(program, "cache_probe_q(X)")
        links = Linker.links_performed
        run_query(program, "cache_probe_q(X)", use_cache=False)
        assert Linker.links_performed == links + 1

    def test_explicit_machine_bypasses_cache(self):
        # An image links against one symbol table; a caller-supplied
        # machine brings its own, so the cache cannot serve it.
        machine = Machine(symbols=SymbolTable())
        links = Linker.links_performed
        result = run_query(APPEND, "append([1], [2], X)", machine=machine)
        assert Linker.links_performed == links + 1
        assert result.machine is machine

    def test_cache_counts_hits_and_misses(self):
        cache = ImageCache()
        cache.get(APPEND, "append([], [], X)")
        cache.get(APPEND, "append([], [], X)")
        cache.get(APPEND, "append([1], [], X)")
        assert cache.stats.misses == 2
        assert cache.stats.hits == 1
        assert len(cache) == 2

    def test_key_covers_program_query_and_options(self):
        base = image_key(APPEND, "append([], [], X)")
        assert image_key(APPEND + " ", "append([], [], X)") != base
        assert image_key(APPEND, "append([], [], Y)") != base
        assert image_key(APPEND, "append([], [], X)",
                         io_mode="real") != base
        assert image_key(APPEND, "append([], [], X)") == base

    def test_lru_eviction_is_bounded(self):
        cache = ImageCache(max_entries=2)
        cache.get("e1(a).", "e1(X)")
        cache.get("e2(a).", "e2(X)")
        cache.get("e3(a).", "e3(X)")
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert image_key("e1(a).", "e1(X)") not in cache
        assert image_key("e3(a).", "e3(X)") in cache

    def test_byte_budget_evicts_lru_under_size_pressure(self):
        """With max_bytes set, inserting past the budget evicts LRU
        entries, the counters account exactly, and a re-miss on the
        evicted key recompiles exactly once."""
        probe = ImageCache(max_bytes=1 << 30)
        probe.get("s1(a).", "s1(X)")
        one_image = probe.stats.bytes_cached
        assert one_image > 0

        # Room for two images, not three.
        cache = ImageCache(max_bytes=int(one_image * 2.5))
        cache.get("s1(a).", "s1(X)")
        cache.get("s2(a).", "s2(X)")
        assert cache.stats.evictions == 0
        assert len(cache) == 2
        cache.get("s3(a).", "s3(X)")             # pressure: s1 is LRU
        assert cache.stats.evictions == 1
        assert len(cache) == 2
        assert image_key("s1(a).", "s1(X)") not in cache
        assert image_key("s2(a).", "s2(X)") in cache
        assert image_key("s3(a).", "s3(X)") in cache
        assert cache.stats.bytes_cached <= int(one_image * 2.5)
        assert cache.stats.hits == 0 and cache.stats.misses == 3

        # Touch s2 so s3 becomes LRU, then re-miss the evicted s1:
        # exactly one fresh compile, and LRU (not insertion) order
        # decides the next victim.
        cache.get("s2(a).", "s2(X)")
        assert cache.stats.hits == 1
        links = Linker.links_performed
        cache.get("s1(a).", "s1(X)")
        assert Linker.links_performed == links + 1
        assert cache.stats.misses == 4
        assert cache.stats.evictions == 2
        assert image_key("s3(a).", "s3(X)") not in cache

    def test_byte_budget_never_evicts_the_newest_entry(self):
        """An image bigger than the whole budget is still cached and
        served — the compile just paid for is never thrown away."""
        cache = ImageCache(max_bytes=1)
        cache.get("b1(a).", "b1(X)")
        assert len(cache) == 1                    # kept despite the budget
        cache.get("b1(a).", "b1(X)")
        assert cache.stats.hits == 1
        cache.get("b2(a).", "b2(X)")              # evicts b1, keeps b2
        assert len(cache) == 1
        assert cache.stats.evictions == 1
        assert image_key("b2(a).", "b2(X)") in cache
        cache.clear()
        assert cache.stats.bytes_cached == 0

    def test_max_bytes_validation(self):
        with pytest.raises(ValueError):
            ImageCache(max_bytes=0)

    def test_concurrent_misses_compile_exactly_once(self):
        """get() is atomic under its lock: racing threads asking for
        the same uncached key must produce one compile and one shared
        image, not a compile per thread."""
        import threading

        cache = ImageCache()
        program = "race_probe(1). race_probe(2)."
        barrier = threading.Barrier(8)
        images = []

        def worker():
            barrier.wait()
            images.append(cache.get(program, "race_probe(X)"))

        links_before = Linker.links_performed
        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert Linker.links_performed == links_before + 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 7
        assert all(image is images[0] for image in images)

    def test_cached_image_is_reused_across_machines(self):
        cache = ImageCache()
        image = cache.get(APPEND, "append([1, 2], [3], X)")
        stats = []
        for _ in range(2):
            machine = Machine(symbols=image.symbols)
            image.install(machine)
            stats.append(machine.run(
                image.entry, answer_names=image.query_variable_names))
        assert stats[0] == stats[1]


# -- pickle round trips ------------------------------------------------------

class TestPickleRoundTrips:

    def test_word_round_trip(self):
        for word in (make_int(-7), make_atom(3),
                     make_unbound(0x123, Zone.GLOBAL),
                     make_list(0x40, Zone.GLOBAL)):
            clone = pickle.loads(pickle.dumps(word))
            assert clone.tag == word.tag
            assert clone.value == word.value
            assert clone.type == word.type

    def test_run_stats_round_trip(self):
        result = run_query(APPEND, "append([1, 2], [3], X)")
        stats = result.stats
        clone = pickle.loads(pickle.dumps(stats))
        assert clone == stats
        assert isinstance(clone, RunStats)

    def test_symbol_table_round_trip(self):
        result = run_query(APPEND, "append([1, 2], [3], X)")
        symbols = result.machine.symbols
        clone = pickle.loads(pickle.dumps(symbols))
        # Interned indices must survive verbatim: words reference atoms
        # and functors by index.
        assert clone.atom_index("append") == symbols.atom_index("append")

    def test_linked_image_round_trip_runs_identically(self):
        cache = ImageCache()
        image = cache.get(TYPEY, "classify(foo, What)")
        reference = Machine(symbols=image.symbols)
        image.install(reference)
        expected = reference.run(
            image.entry, answer_names=image.query_variable_names)

        clone = pickle.loads(pickle.dumps(image))
        # The handler table is rebuilt from (name, arity) specs on
        # arrival, so the clone's handlers are this process's builtins.
        assert set(clone.builtin_handlers) == set(image.builtin_handlers)
        machine = Machine(symbols=clone.symbols)
        clone.install(machine)
        stats = machine.run(clone.entry,
                            answer_names=clone.query_variable_names)
        assert stats == expected
        assert machine.solutions == reference.solutions

    def test_machine_with_fused_closures_pickles_cleanly(self):
        result = run_query(APPEND, "append([1, 2], [3], X)",
                           all_solutions=True)
        machine = result.machine
        # Install the fused closures exactly as _execute would; a
        # pickle taken mid-run must drop them (they capture the memory
        # hierarchy and cannot cross a process boundary).
        machine._read, machine._write, machine.deref = \
            machine.memory.fused_data_path(machine)
        clone = pickle.loads(pickle.dumps(machine))
        assert "_read" not in clone.__dict__
        assert "deref" not in clone.__dict__
        # The clone re-runs to the same result: dispatch is rebuilt on
        # unpickle, predecode lazily on the first run.
        clone.reset_for_reuse()
        stats = clone.run(clone.image.entry, collect_all=True,
                          answer_names=clone.image.query_variable_names)
        assert stats == result.stats
        assert clone.solutions == result.solutions


# -- result detachment -------------------------------------------------------

class TestDetach:

    def test_detach_releases_machine_and_image(self):
        result = run_query(APPEND, "append([1], [2], X)", use_cache=False)
        machine_ref = weakref.ref(result.machine)
        milliseconds = result.milliseconds
        assert result.detach() is result
        assert result.detached
        assert result.machine is None and result.image is None
        gc.collect()
        assert machine_ref() is None, "detach must release the heap"
        # Derived observables keep working from the captured values.
        assert result.milliseconds == milliseconds
        assert result.klips > 0
        assert result.output == ""
        assert result.trap_reports == []
        assert result.detach() is result    # idempotent

    def test_detached_result_without_machine_rejects_timing(self):
        bare = QueryResult(solutions=[], stats=RunStats(),
                           machine=None, image=None)
        with pytest.raises(ValueError):
            bare.milliseconds
