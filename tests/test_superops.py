"""The superinstruction layer: fused-entry structure, ablation
equivalence, generation-counter staleness and warm-reuse translation
caching (the regressions ISSUE 8 hardens)."""

from repro.api import compile_and_load
from repro.core.costs import Features
from repro.core.instruction import Instruction
from repro.core.machine import Machine
from repro.core.opcodes import Op
from repro.core.predecode import PredecodedCode, predecode
from repro.core.superops import FusionTable, SuperopFuser
from repro.core.symbols import SymbolTable
from repro.core.word import make_int
from repro.prolog.writer import term_to_text

APPEND = ("append([], L, L).\n"
          "append([H|T], L, [H|R]) :- append(T, L, R).\n")
QUERY = "append([1,2,3], [4,5], R)"


def loaded_machine(program=APPEND, query=QUERY, **kwargs):
    return compile_and_load(program, query,
                            machine=Machine(symbols=SymbolTable(),
                                            fast_path=True, **kwargs))


def run_loaded(machine):
    return machine.run(machine.image.entry,
                       answer_names=machine.image.query_variable_names)


def self_table(machine):
    """A FusionTable naming every static block of ``machine.code``, so
    fusion does not depend on what the committed profile selected."""
    plain = predecode(machine.code, machine._dispatch,
                      machine.costs.static_cost_table())
    return FusionTable([tuple(step[4].op.name for step in entry[0])
                        for entry in plain.entries if entry is not None])


class TestFusedEntries:
    def test_fused_entries_preserve_block_sums(self):
        machine = loaded_machine()
        plain = predecode(machine.code, machine._dispatch,
                          machine.costs.static_cost_table())
        fuser = SuperopFuser(machine, table=self_table(machine))
        fused = predecode(machine.code, machine._dispatch,
                          machine.costs.static_cost_table(), fuser=fuser)
        assert fused.fused_count > 0
        seen_fused = 0
        for address, entry in enumerate(fused.entries):
            ref = plain.entries[address]
            assert (entry is None) == (ref is None)
            if entry is None:
                continue
            steps, cycles, instrs, infers, closure = entry
            # The uncharge sums a fused entry carries must be the plain
            # translation's, or mid-block deviations landing on it
            # would settle wrong cycle counts.
            assert (cycles, instrs, infers) == (ref[1], ref[2], ref[3])
            if closure is not None:
                seen_fused += 1
                assert steps == ()
                assert callable(closure)
            else:
                assert steps == ref[0]
            # The recovering loop needs the plain per-address step even
            # under a fused entry.
            assert fused.singles[address] == plain.singles[address]
        assert seen_fused == fused.fused_count

    def test_superops_ablation_runs_unfused_and_identical(self):
        fused = loaded_machine()
        unfused = loaded_machine(features=Features(superops=False))
        stats_fused = run_loaded(fused)
        stats_unfused = run_loaded(unfused)
        assert unfused._predecoded.fused_count == 0
        assert all(entry is None or entry[4] is None
                   for entry in unfused._predecoded.entries)
        assert fused._predecoded.fused_count > 0
        assert stats_fused.cycles == stats_unfused.cycles
        assert stats_fused.instructions == stats_unfused.instructions
        assert stats_fused.inferences == stats_unfused.inferences
        assert [term_to_text(s["R"]) for s in fused.solutions] == \
            [term_to_text(s["R"]) for s in unfused.solutions]


class TestGenerationStaleness:
    def test_valid_for_checks_generation(self):
        machine = loaded_machine()
        table = machine._ensure_predecoded()
        assert table.valid_for(machine.code, machine._code_generation)
        # A length-preserving change only moves the generation; the
        # staleness check must still catch it.
        assert not table.valid_for(machine.code,
                                   machine._code_generation + 1)
        # Without a generation the check degrades to length-only.
        assert table.valid_for(machine.code)

    def test_patch_code_retranslates_same_length_rewrite(self):
        machine = loaded_machine("value(1).", "value(X)")
        run_loaded(machine)
        assert term_to_text(machine.solutions[0]["X"]) == "1"
        address, old = next(
            (a, i) for a, i in enumerate(machine.code)
            if i is not None and i.op is Op.GET_CONSTANT)
        machine.patch_code(address, Instruction(
            Op.GET_CONSTANT, make_int(2), old.b, infer=old.infer))
        machine.reset_for_reuse()
        run_loaded(machine)
        # With a length-only staleness check the fast path would keep
        # executing the stale predecoded constant and still answer 1.
        assert term_to_text(machine.solutions[0]["X"]) == "2"


class TestWarmReuseTranslationCache:
    def test_reset_for_reuse_keeps_translation(self):
        machine = loaded_machine()
        first = run_loaded(machine)
        table = machine._predecoded
        baseline = PredecodedCode.translations_performed
        machine.reset_for_reuse()
        second = run_loaded(machine)
        # Same table object, no new translation work — the warm-pool
        # analogue of the linker's links_performed guarantee.
        assert machine._predecoded is table
        assert PredecodedCode.translations_performed == baseline
        assert second.cycles == first.cycles
        assert second.instructions == first.instructions

    def test_invalidation_translates_exactly_once(self):
        machine = loaded_machine()
        run_loaded(machine)
        baseline = PredecodedCode.translations_performed
        machine.invalidate_predecode()
        machine.reset_for_reuse()
        run_loaded(machine)
        assert PredecodedCode.translations_performed == baseline + 1
