"""The multiprocess query service (ISSUE 3): ordered results, the
sequential-vs-parallel identity guarantee, per-query structured
failures (bad programs, cycle budgets, wall timeouts) that never kill
the pool, and the no-heap-retention contract of service results.

Worker processes are real ``spawn`` children, so this file keeps one
small pool per test and closes it promptly."""

import pytest

from repro.serve import DEFAULT_PROGRAM, QueryError, QueryService

APPEND = ("append([], L, L). "
          "append([H|T], L, [H|R]) :- append(T, L, R).")
NREV = (APPEND +
        " nrev([], []). "
        "nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).")
FACTS = "colour(red). colour(green). colour(blue)."
LOOP = "loop :- loop."

PROGRAMS = {"append": APPEND, "nrev": NREV, "facts": FACTS}

BATCH = [
    ("append", "append([1, 2], [3], X)"),
    ("facts", "colour(C)"),
    ("nrev", "nrev([1, 2, 3, 4, 5], R)"),
    ("facts", "colour(C)"),
    ("append", "append(X, [z], [a, z])"),
]


def _signature(result):
    return (result.index, result.program, result.query,
            result.solutions, result.stats, result.output)


# -- in-process path ---------------------------------------------------------

def test_results_come_back_in_input_order():
    with QueryService(PROGRAMS, workers=0) as service:
        results = service.run_many(BATCH)
    assert [r.index for r in results] == list(range(len(BATCH)))
    assert [(r.program, r.query) for r in results] == BATCH
    assert all(r.ok for r in results)


def test_single_program_string_uses_default_name():
    with QueryService(FACTS, workers=0) as service:
        result = service.run("colour(C)")
    assert result.ok
    assert result.program == DEFAULT_PROGRAM
    assert len(result.solutions) == 1      # first solution only


def test_all_solutions_option():
    with QueryService(FACTS, workers=0, all_solutions=True) as service:
        assert len(service.run("colour(C)").solutions) == 3
    with QueryService(FACTS, workers=0) as service:
        assert len(service.run("colour(C)",
                               all_solutions=True).solutions) == 3


def test_unknown_program_is_a_per_slot_failure():
    with QueryService(PROGRAMS, workers=0) as service:
        results = service.run_many([
            ("append", "append([], [], X)"),
            ("no_such_program", "whatever(X)"),
            ("facts", "colour(C)"),
        ])
    assert results[0].ok and results[2].ok
    assert not results[1].ok
    assert results[1].error.kind == "UnknownProgram"


def test_compile_error_is_captured_not_raised():
    programs = dict(PROGRAMS, broken="this is not prolog ((((")
    with QueryService(programs, workers=0) as service:
        results = service.run_many([
            ("broken", "anything(X)"),
            ("facts", "colour(C)"),
        ])
    assert not results[0].ok
    assert isinstance(results[0].error, QueryError)
    assert results[0].error.message        # human-readable
    assert results[1].ok                   # the pool survived


def test_cycle_budget_is_a_per_slot_failure():
    programs = dict(PROGRAMS, loop=LOOP)
    with QueryService(programs, workers=0) as service:
        results = service.run_many([
            ("loop", "loop"),
            ("facts", "colour(C)"),
        ], max_cycles=50_000)
    assert not results[0].ok
    assert results[0].error.kind == "CycleLimitExceeded"
    assert results[0].error.cycles is not None
    assert results[1].ok


def test_service_result_holds_no_machine():
    with QueryService(FACTS, workers=0) as service:
        result = service.run("colour(C)")
    assert not hasattr(result, "machine")
    assert "machine" not in vars(result)


def test_closed_service_rejects_work():
    service = QueryService(FACTS, workers=0)
    service.close()
    with pytest.raises(RuntimeError):
        service.run("colour(C)")
    service.close()                        # idempotent


# -- worker pool -------------------------------------------------------------

def test_pool_matches_sequential_bit_for_bit():
    """The acceptance cross-check: per-query solutions and simulated
    RunStats identical between workers=0 and a real pool."""
    with QueryService(PROGRAMS, workers=0) as sequential:
        expected = [_signature(r) for r in sequential.run_many(BATCH)]
    with QueryService(PROGRAMS, workers=2) as pooled:
        first = pooled.run_many(BATCH)
        second = pooled.run_many(BATCH)    # warm engines, same answers
    assert all(r.ok for r in first)
    assert [_signature(r) for r in first] == expected
    assert [_signature(r) for r in second] == expected
    assert {r.worker for r in first} <= {0, 1}


def test_pool_captures_failures_and_keeps_serving():
    programs = dict(PROGRAMS, loop=LOOP)
    with QueryService(programs, workers=1) as service:
        results = service.run_many([
            ("loop", "loop"),
            ("facts", "colour(C)"),
        ], max_cycles=50_000)
        assert results[0].error.kind == "CycleLimitExceeded"
        assert results[1].ok
        # The same worker process is still alive and serving.
        assert service.run(("facts", "colour(C)")).ok


def test_wall_timeout_kills_and_respawns_worker():
    # deadline_check_cycles=None disables cooperative abandonment so
    # this keeps exercising the parent's kill-and-respawn backstop
    # (the cooperative path has its own tests in test_serve_overload).
    programs = dict(PROGRAMS, loop=LOOP)
    with QueryService(programs, workers=1,
                      deadline_check_cycles=None) as service:
        results = service.run_many([
            ("loop", "loop"),              # no cycle budget: runs forever
            ("facts", "colour(C)"),
        ], timeout_s=1.5)
    assert not results[0].ok
    assert results[0].error.kind == "WallTimeout"
    assert results[0].error.transient      # retryable host condition
    # The respawned worker served the rest of the batch.
    assert results[1].ok


def test_delivered_result_beats_expired_deadline():
    """Regression for the timeout-expiry race: a result that reached
    the parent's queue within the same poll interval as its wall
    deadline must win — the reaper drains deliveries before judging
    deadlines, so the query is never reported WallTimeout with its
    answer already in hand."""
    import time
    from collections import deque

    from repro.serve.cache import image_key
    from repro.serve.service import _BatchState

    with QueryService(PROGRAMS, workers=1) as service:
        assert service.run(("facts", "colour(C)")).ok    # warm everything
        queries = [("facts", "colour(C)")]
        results = [None]
        image = service.cache.get(FACTS, "colour(C)")
        state = _BatchState(
            queries=queries,
            prepared=[(image_key(FACTS, "colour(C)"), image)],
            opts={"all_solutions": False, "max_cycles": None,
                  "recovery": False, "checkpoint_every": None},
            timeout_s=30.0, results=results, policy=None, chaos=None,
            batch_deadline=None, runnable=deque(), idle=deque())
        service._dispatch(0, 0, state)
        # Wait for the worker's answer to be *delivered* (sitting in
        # the result pipe, not yet collected).
        patience = time.monotonic() + 15.0
        while not service._result_conns[0].poll(0):
            assert time.monotonic() < patience, "worker never answered"
            time.sleep(0.02)
        # Now expire the wall deadline out from under it and reap: the
        # seed service killed the worker and reported WallTimeout here.
        attempt, _, propagated = state.inflight[0][0]
        # -5.0 beats the propagation grace window too, so the drain-
        # before-judging order is what saves the slot, nothing else.
        state.inflight[0][0] = (attempt, time.monotonic() - 5.0,
                                propagated)
        service._reap(state)
        assert results[0] is not None
        assert results[0].ok, results[0].error
        assert service.health().timeouts == 0
