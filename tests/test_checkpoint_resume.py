"""Durable checkpoint/resume (ISSUE 5 tentpole): cycle-sliced
execution is observation-equivalent to a plain run, every periodic
checkpoint pickles and resumes bit-identically on a *fresh* machine,
and incremental capture copies only the chunks dirtied since the
previous checkpoint."""

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.machine import Machine
from repro.core.traps import MachineCheckpoint
from repro.recovery import FaultInjector, install_default_recovery
from repro.serve import ImageCache

APPEND = ("append([], L, L). "
          "append([H|T], L, [H|R]) :- append(T, L, R).")
NREV = (APPEND +
        " nrev([], []). "
        "nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R). "
        "mklist(0, []). "
        "mklist(N, [N|T]) :- N > 0, M is N - 1, mklist(M, T). "
        "run(N, R) :- mklist(N, L), nrev(L, R).")

_cache = ImageCache()


def _image(query="run(20, R)"):
    return _cache.get(NREV, query)


def _fresh(image, inject_seed=None):
    machine = Machine(symbols=image.symbols)
    image.install(machine)
    if inject_seed is not None:
        install_default_recovery(machine)
        FaultInjector(seed=inject_seed, page_faults=1, zone_squeezes=1,
                      spurious=1, horizon=10_000).attach(machine)
    return machine


def _signature(machine, stats):
    return (stats, machine.solutions, "".join(machine.output))


def _reference(image, inject_seed=None):
    machine = _fresh(image, inject_seed)
    stats = machine.run(image.entry,
                        answer_names=image.query_variable_names)
    return _signature(machine, stats)


def _run_checkpointed(image, every, inject_seed=None):
    """A sliced run checkpointing on the cycle-aligned grid; returns
    (signature, [checkpoints])."""
    machine = _fresh(image, inject_seed)
    checkpoints = []
    previous = [None]

    def on_stop(m):
        ckpt = MachineCheckpoint.capture(m, since=previous[0])
        previous[0] = ckpt
        checkpoints.append(ckpt)

    machine.memory.store.track_dirty = True
    try:
        stats = machine.run_sliced(
            image.entry,
            lambda cycles: cycles - cycles % every + every,
            on_stop,
            answer_names=image.query_variable_names)
    finally:
        machine.memory.store.track_dirty = False
        machine.memory.store.dirty_chunks.clear()
    return _signature(machine, stats), checkpoints


def _resume_on_fresh(image, ckpt, inject_seed=None):
    """The documented resume protocol: fresh machine, bootstrap stub,
    restore, real budget back (the checkpoint saved the slice target)."""
    machine = _fresh(image, inject_seed)
    budget = machine.max_cycles
    machine._bootstrap_stub(image.entry)
    ckpt.restore(machine)
    machine.max_cycles = budget
    stats = machine.resume()
    return _signature(machine, stats)


# -- the tentpole invariant --------------------------------------------------

def test_sliced_run_is_observation_equivalent():
    image = _image()
    expected = _reference(image)
    got, checkpoints = _run_checkpointed(image, every=1_000)
    assert got == expected
    assert checkpoints, "a multi-thousand-cycle run must checkpoint"
    assert [c.cycles for c in checkpoints] == \
        sorted(set(c.cycles for c in checkpoints)), "monotone grid"


def test_every_checkpoint_resumes_bit_identically_on_fresh_machine():
    image = _image()
    expected = _reference(image)
    _, checkpoints = _run_checkpointed(image, every=1_000)
    for ckpt in checkpoints:
        revived = pickle.loads(pickle.dumps(ckpt))
        assert _resume_on_fresh(image, revived) == expected


def test_resume_under_injected_faults_matches():
    """Checkpoint/resume composes with trap recovery: a checkpoint of
    an injected run carries the injector's mid-run progress, and the
    resumed machine replays the remaining schedule only."""
    image = _image()
    expected = _reference(image, inject_seed=11)
    assert expected[0].faults_injected > 0, "the seed must inject"
    _, checkpoints = _run_checkpointed(image, every=800, inject_seed=11)
    middle = checkpoints[len(checkpoints) // 2]
    revived = pickle.loads(pickle.dumps(middle))
    assert _resume_on_fresh(image, revived, inject_seed=11) == expected


def test_resume_sliced_continues_the_same_grid():
    image = _image()
    _, checkpoints = _run_checkpointed(image, every=1_000)
    expected_later = [c.cycles for c in checkpoints[2:]]

    machine = _fresh(image)
    budget = machine.max_cycles
    machine._bootstrap_stub(image.entry)
    pickle.loads(pickle.dumps(checkpoints[1])).restore(machine)
    machine.max_cycles = budget
    seen = []
    machine.memory.store.track_dirty = True
    try:
        stats = machine.resume_sliced(
            lambda cycles: cycles - cycles % 1_000 + 1_000,
            lambda m: seen.append(m.cycles))
    finally:
        machine.memory.store.track_dirty = False
        machine.memory.store.dirty_chunks.clear()
    assert seen == expected_later
    assert _signature(machine, stats) == _reference(image)


# -- incremental capture -----------------------------------------------------

def test_incremental_capture_copies_only_dirty_chunks():
    machine = Machine()
    store = machine.memory.store
    store.track_dirty = True
    try:
        from repro.core.word import make_int
        bases = [0x1_0000, 0x2_0000, 0x3_0000]   # three distinct chunks
        for base in bases:
            store.poke(base + 4, make_int(base))
        full = MachineCheckpoint.capture(machine)
        assert sorted(full.copied_chunks) == [b >> 16 for b in bases]

        store.poke(bases[1] + 8, make_int(99))
        delta = MachineCheckpoint.capture(machine, since=full)
        assert list(delta.copied_chunks) == [bases[1] >> 16]
        # Clean chunks are shared with the baseline, not recopied.
        for base in (bases[0], bases[2]):
            key = base >> 16
            assert delta.store_chunks[key] is full.store_chunks[key]
        assert delta.store_chunks[bases[1] >> 16] \
            is not full.store_chunks[bases[1] >> 16]
    finally:
        store.track_dirty = False
        store.dirty_chunks.clear()


def test_checkpoint_pickle_round_trip_is_faithful():
    image = _image("run(8, R)")
    _, checkpoints = _run_checkpointed(image, every=500)
    ckpt = checkpoints[-1]
    clone = pickle.loads(pickle.dumps(ckpt))
    assert clone.cycles == ckpt.cycles
    assert clone.state == ckpt.state
    assert clone.registers == ckpt.registers
    assert clone.solutions == ckpt.solutions
    assert clone.timing is not None
    assert clone.host is not None
    assert set(clone.store_chunks) == set(ckpt.store_chunks)


# -- the property ------------------------------------------------------------

@given(every=st.integers(min_value=100, max_value=4_000))
@settings(max_examples=12, deadline=None)
def test_any_checkpoint_cadence_resumes_identically(every):
    """For an arbitrary checkpoint cadence, the sliced run and a resume
    from its middle checkpoint both reproduce the plain run exactly."""
    image = _image("run(12, R)")
    expected = _reference(image)
    got, checkpoints = _run_checkpointed(image, every=every)
    assert got == expected
    if checkpoints:
        middle = checkpoints[len(checkpoints) // 2]
        assert _resume_on_fresh(
            image, pickle.loads(pickle.dumps(middle))) == expected
