"""The PLM suite: answer correctness and the paper's inference counts.

Where the reconstruction is pinned by the paper's published counts
(see programs.py), the equality is exact; the other programs assert
their measured count stays at the recorded value (regression guard)
and that their *answers* are right.
"""

import pytest

from repro.bench.programs import SUITE, SUITE_ORDER
from repro.bench.runner import SuiteRunner
from repro.prolog.terms import list_to_python
from repro.prolog.writer import term_to_text


@pytest.fixture(scope="module")
def runner():
    return SuiteRunner()


class TestPaperInferenceCounts:
    @pytest.mark.parametrize("name", SUITE_ORDER)
    def test_pure_counts(self, runner, name):
        benchmark = SUITE[name]
        result = runner.run(name, "pure")
        if benchmark.paper_inferences_pure is not None:
            assert result.inferences == benchmark.paper_inferences_pure

    @pytest.mark.parametrize("name", SUITE_ORDER)
    def test_timed_counts(self, runner, name):
        benchmark = SUITE[name]
        result = runner.run(name, "timed")
        if benchmark.paper_inferences_timed is not None:
            assert result.inferences == benchmark.paper_inferences_timed

    def test_reconstructed_counts_recorded(self, runner):
        """Regression guard for the non-pinned programs: measured
        counts stay at the values EXPERIMENTS.md reports."""
        expected = {"mutest": 1286, "palin25": 353, "pri2": 1228,
                    "qs4": 602, "queens": 726, "query": 2883}
        for name, count in expected.items():
            assert runner.run(name, "pure").inferences == count, name


class TestAnswers:
    def test_nrev_reverses(self, runner):
        machine = runner.load("nrev1", "pure")
        machine.run(machine.image.entry, answer_names=["R"])
        result = machine.solutions[0]["R"]
        assert [t.value for t in list_to_python(result)] \
            == list(range(30, 0, -1))

    def test_qs4_sorts(self, runner):
        machine = runner.load("qs4", "pure")
        machine.run(machine.image.entry, answer_names=["R"])
        values = [t.value for t in list_to_python(
            machine.solutions[0]["R"])]
        assert values == sorted(values)
        assert len(values) == 50

    def test_pri2_finds_the_primes(self, runner):
        machine = runner.load("pri2", "pure")
        machine.run(machine.image.entry, answer_names=["Ps"])
        primes = [t.value for t in list_to_python(
            machine.solutions[0]["Ps"])]
        assert primes[:10] == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29]
        assert primes[-1] == 79
        assert all(all(p % q for q in primes if q < p) for p in primes)

    def test_queens_solution_is_valid(self, runner):
        machine = runner.load("queens", "pure")
        machine.run(machine.image.entry, answer_names=["Qs"])
        queens = [t.value for t in list_to_python(
            machine.solutions[0]["Qs"])]
        assert sorted(queens) == [1, 2, 3, 4, 5, 6]
        for i, a in enumerate(queens):
            for j, b in enumerate(queens):
                if i < j:
                    assert abs(a - b) != j - i, "diagonal attack"

    def test_deriv_times10_result_shape(self, runner):
        machine = runner.load("times10", "pure")
        machine.run(machine.image.entry, answer_names=["D"])
        text = term_to_text(machine.solutions[0]["D"])
        # d(x*x, x) = 1*x + x*1 and so on: the derivative expression
        # contains '1 * x + x * 1' at its core.
        assert "1 * x + x * 1" in text

    def test_hanoi_succeeds(self, runner):
        machine = runner.load("hanoi", "pure")
        stats = machine.run(machine.image.entry, answer_names=[])
        assert machine.solutions

    def test_hanoi_timed_reports_every_move(self):
        # 2^8 - 1 moves, each writing "from to\n" via inform/2.
        from repro.api import run_query
        from repro.bench.programs import HANOI_TIMED
        result = run_query(HANOI_TIMED, "hanoi(8)", io_mode="real")
        assert result.output.count("\n") == 255

    def test_mutest_proves_the_theorem(self, runner):
        machine = runner.load("mutest", "pure")
        machine.run(machine.image.entry, answer_names=[])
        assert machine.solutions

    def test_palin25_recognises_palindrome(self, runner):
        machine = runner.load("palin25", "pure")
        machine.run(machine.image.entry, answer_names=[])
        assert machine.solutions

    def test_query_finds_the_right_pairs(self):
        from repro.api import run_query
        from repro.bench.programs import QUERY
        result = run_query(QUERY, "query(C1, D1, C2, D2)",
                           all_solutions=True)
        assert result.solutions, "query must have solutions"
        for s in result.solutions:
            d1, d2 = s["D1"].value, s["D2"].value
            assert d1 > d2
            assert 20 * d1 < 21 * d2

    def test_con_variants_agree(self, runner):
        pure = runner.run("con1", "pure")
        timed = runner.run("con1", "timed")
        assert timed.inferences - pure.inferences == 2   # write + nl


class TestVariantRelationships:
    @pytest.mark.parametrize("name", SUITE_ORDER)
    def test_timed_at_least_as_many_inferences(self, runner, name):
        pure = runner.run(name, "pure")
        timed = runner.run(name, "timed")
        assert timed.inferences >= pure.inferences

    @pytest.mark.parametrize("name", ["con1", "nrev1", "hanoi", "qs4"])
    def test_all_programs_terminate_with_success(self, runner, name):
        result = runner.run(name, "pure")
        assert result.stats.cycles > 0
