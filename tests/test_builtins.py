"""Escape built-ins: type tests, term construction, ordering, I/O."""

import pytest

from repro.api import run_query
from tests.conftest import all_bindings, first_binding

DUMMY = "dummy."


class TestTypeTests:
    @pytest.mark.parametrize("goal,holds", [
        ("var(_)", True),
        ("nonvar(foo)", True),
        ("atom(foo)", True), ("atom(1)", False), ("atom([])", True),
        ("number(3)", True), ("number(2.5)", True),
        ("number(foo)", False),
        ("integer(3)", True), ("integer(3.0)", False),
        ("float(3.5)", True), ("float(3)", False),
        ("atomic(foo)", True), ("atomic(3)", True),
        ("atomic(f(x))", False),
        ("compound(f(x))", True), ("compound([1])", True),
        ("compound(foo)", False),
    ])
    def test_direct(self, goal, holds):
        assert run_query(DUMMY, goal).succeeded == holds

    def test_var_becomes_nonvar_after_binding(self):
        program = "t :- var(X), X = 1, nonvar(X), integer(X)."
        assert run_query(program, "t").succeeded


class TestStructuralEquality:
    @pytest.mark.parametrize("goal,holds", [
        ("f(a) == f(a)", True),
        ("f(a) == f(b)", False),
        ("X == X", True),
        ("f(X) \\== f(Y)", True),        # distinct variables
        ("[1,2] == [1,2]", True),
        ("a @< b", True),
        ("f(a) @> a", True),             # compound after atomic
        ("1 @< a", True),                # numbers before atoms
        ("f(a) @< g(a)", True),          # same arity: by name
        ("f(a) @< f(a, b)", True),       # lower arity first
    ])
    def test_ordering(self, goal, holds):
        assert run_query(DUMMY, goal).succeeded == holds

    def test_compare_3(self):
        assert first_binding(DUMMY, "compare(O, 1, 2)", "O") == "<"
        assert first_binding(DUMMY, "compare(O, b, a)", "O") == ">"
        assert first_binding(DUMMY, "compare(O, f(x), f(x))", "O") == "="


class TestFunctorArgUniv:
    def test_functor_decompose(self):
        result = run_query(DUMMY, "functor(point(1, 2), N, A)")
        assert result.bindings_text() == "N = point, A = 2"

    def test_functor_of_atom(self):
        assert first_binding(DUMMY, "functor(foo, N, 0)", "N") == "foo"

    def test_functor_construct(self):
        assert first_binding(DUMMY, "functor(T, pair, 2)", "T") \
            == "pair(_, _)".replace("_", first_binding(
                DUMMY, "functor(T, pair, 2)", "T").split("(")[1].split(",")[0]) \
            or "pair(" in first_binding(DUMMY, "functor(T, pair, 2)", "T")

    def test_functor_of_list(self):
        result = run_query(DUMMY, "functor([1, 2], N, A)")
        assert result.bindings_text() == "N = '.', A = 2" \
            or result.solutions[0]["A"].value == 2

    def test_arg(self):
        assert first_binding(DUMMY, "arg(2, f(a, b, c), X)", "X") == "b"

    def test_arg_out_of_range_fails(self):
        assert not run_query(DUMMY, "arg(4, f(a, b, c), _X)").succeeded
        assert not run_query(DUMMY, "arg(0, f(a), _X)").succeeded

    def test_univ_decompose(self):
        assert first_binding(DUMMY, "f(1, 2) =.. L", "L") == "[f, 1, 2]"

    def test_univ_construct(self):
        assert first_binding(DUMMY, "T =.. [g, a, b]", "T") == "g(a, b)"

    def test_univ_atom(self):
        assert first_binding(DUMMY, "T =.. [foo]", "T") == "foo"

    def test_univ_roundtrip(self):
        program = "round(T, T2) :- T =.. L, T2 =.. L."
        assert first_binding(program, "round(h(x, [1]), R)", "R") \
            == "h(x, [1])"


class TestMetaCall:
    PROGRAM = """
    p(1). p(2).
    apply(G) :- call(G).
    """

    def test_call_atom(self):
        assert run_query("ok. t :- call(ok).", "t").succeeded

    def test_call_with_arguments(self):
        values = all_bindings(self.PROGRAM, "apply(p(X))", "X")
        assert values == ["1", "2"]

    def test_variable_goal_is_metacall(self):
        program = self.PROGRAM + "t(G) :- G."
        values = all_bindings(program, "t(p(X))", "X")
        assert values == ["1", "2"]

    def test_call_respects_cut_barrier(self):
        program = "p(1). p(2). t(X) :- call(p(X)), !."
        assert all_bindings(program, "t(X)", "X") == ["1"]


class TestRealIO:
    def test_write_produces_output(self):
        result = run_query("greet :- write(hello), nl, write([1,2,3]).",
                           "greet", io_mode="real")
        assert result.output == "hello\n[1, 2, 3]"

    def test_writeq_quotes(self):
        result = run_query("t :- writeq('hello world').", "t",
                           io_mode="real")
        assert result.output == "'hello world'"

    def test_tab(self):
        result = run_query("t :- write(a), tab(3), write(b).", "t",
                           io_mode="real")
        assert result.output == "a   b"

    def test_stub_mode_produces_no_output(self):
        result = run_query("t :- write(hello), nl.", "t", io_mode="stub")
        assert result.output == ""
        assert result.succeeded

    def test_write_variable(self):
        result = run_query("t(X) :- write(f(X)).", "t(_Y)",
                           io_mode="real")
        assert result.output.startswith("f(_")


class TestHalt:
    def test_halt_stops_the_machine(self):
        result = run_query("t :- halt, this_never_runs.", "t") \
            if False else run_query("t :- halt.", "t")
        assert result.machine.halted


class TestLengthAndNotUnify:
    def test_length_of_list(self):
        assert first_binding(DUMMY, "length([a, b, c], N)", "N") == "3"
        assert first_binding(DUMMY, "length([], N)", "N") == "0"

    def test_length_checks(self):
        assert run_query(DUMMY, "length([a, b], 2)").succeeded
        assert not run_query(DUMMY, "length([a, b], 3)").succeeded

    def test_length_builds_fresh_list(self):
        result = run_query(DUMMY, "length(L, 3), L = [x, y, z]")
        assert result.succeeded

    def test_not_unify(self):
        assert run_query(DUMMY, "a \\= b").succeeded
        assert not run_query(DUMMY, "a \\= a").succeeded
        assert not run_query(DUMMY, "X \\= a").succeeded  # X unifies
        assert run_query(DUMMY, "f(1) \\= f(2)").succeeded

    def test_not_unify_leaves_no_bindings(self):
        # The inner ='s bindings are undone whether \= fails or
        # succeeds: after f(2) \= f(1) the variables are untouched.
        result = run_query(DUMMY, "X = f(Y), Y = 2, X \\= f(1)")
        assert result.succeeded
        assert result.solutions[0]["Y"].value == 2

    def test_not_unify_with_unifiable_open_terms_fails(self):
        # f(Y) and f(1) unify, so the disequality fails (standard
        # negation-as-failure semantics).
        assert not run_query(DUMMY, "X = f(_Y), X \\= f(1)").succeeded
