"""Unit tests for the zone check (paper section 3.2.3)."""

import pytest

from repro.core.tags import Type, Zone
from repro.errors import StackOverflowTrap, ZoneTrap
from repro.memory.layout import DEFAULT_LAYOUT
from repro.memory.zones import ZoneChecker


@pytest.fixture
def checker():
    return ZoneChecker()


GLOBAL_BASE = DEFAULT_LAYOUT[Zone.GLOBAL].base
LOCAL_BASE = DEFAULT_LAYOUT[Zone.LOCAL].base


class TestTypeRules:
    def test_list_allowed_into_global(self, checker):
        checker.check(Zone.GLOBAL, GLOBAL_BASE, Type.LIST, is_write=False)

    def test_float_never_an_address(self, checker):
        with pytest.raises(ZoneTrap):
            checker.check(Zone.GLOBAL, GLOBAL_BASE, Type.FLOAT,
                          is_write=False)

    def test_integer_never_an_address(self, checker):
        with pytest.raises(ZoneTrap):
            checker.check(Zone.LOCAL, LOCAL_BASE, Type.INT, is_write=True)

    def test_list_not_allowed_into_local(self, checker):
        with pytest.raises(ZoneTrap):
            checker.check(Zone.LOCAL, LOCAL_BASE, Type.LIST,
                          is_write=False)

    def test_reference_into_local_ok(self, checker):
        checker.check(Zone.LOCAL, LOCAL_BASE, Type.REF, is_write=True)


class TestLimits:
    def test_below_zone_base_traps(self, checker):
        with pytest.raises(StackOverflowTrap):
            checker.check(Zone.GLOBAL, GLOBAL_BASE - 4096, Type.LIST,
                          is_write=False)

    def test_beyond_zone_limit_traps(self, checker):
        limit = DEFAULT_LAYOUT[Zone.GLOBAL].limit
        with pytest.raises(StackOverflowTrap):
            checker.check(Zone.GLOBAL, limit + 4096, Type.LIST,
                          is_write=False)

    def test_granularity_is_4k(self, checker):
        # Limits compare at 4K-word granularity: an address in the same
        # granule as the limit still passes.
        checker.set_limits(Zone.GLOBAL, GLOBAL_BASE, GLOBAL_BASE + 100)
        checker.check(Zone.GLOBAL, GLOBAL_BASE + 4095, Type.REF,
                      is_write=False)
        with pytest.raises(StackOverflowTrap):
            checker.check(Zone.GLOBAL, GLOBAL_BASE + 4096, Type.REF,
                          is_write=False)

    def test_dynamic_limit_change(self, checker):
        new_max = GLOBAL_BASE + 8192
        checker.set_limits(Zone.GLOBAL, GLOBAL_BASE, new_max)
        checker.check(Zone.GLOBAL, new_max - 1, Type.REF, is_write=False)
        with pytest.raises(StackOverflowTrap):
            checker.check(Zone.GLOBAL, new_max + 4096, Type.REF,
                          is_write=False)

    def test_high_address_bits_must_be_zero(self, checker):
        with pytest.raises(ZoneTrap):
            checker.check(Zone.GLOBAL, 1 << 28, Type.REF, is_write=False)


class TestWriteProtection:
    def test_write_protected_zone_traps_on_write(self, checker):
        checker.set_write_protected(Zone.STATIC, True)
        base = DEFAULT_LAYOUT[Zone.STATIC].base
        checker.check(Zone.STATIC, base, Type.REF, is_write=False)
        with pytest.raises(ZoneTrap):
            checker.check(Zone.STATIC, base, Type.REF, is_write=True)

    def test_protection_can_be_lifted(self, checker):
        checker.set_write_protected(Zone.STATIC, True)
        checker.set_write_protected(Zone.STATIC, False)
        checker.check(Zone.STATIC, DEFAULT_LAYOUT[Zone.STATIC].base,
                      Type.REF, is_write=True)


class TestBehaviour:
    def test_disabled_checker_allows_anything(self):
        checker = ZoneChecker(enabled=False)
        checker.check(Zone.GLOBAL, 10, Type.FLOAT, is_write=True)

    def test_unmapped_zone_traps(self, checker):
        with pytest.raises(ZoneTrap):
            checker.check(Zone.CODE, 0, Type.CODE_PTR, is_write=False)

    def test_violations_counted(self, checker):
        before = checker.violations
        with pytest.raises(ZoneTrap):
            checker.check(Zone.GLOBAL, GLOBAL_BASE, Type.INT,
                          is_write=False)
        assert checker.violations == before + 1
