"""Property: the predecoded fast path is observation-equivalent to the
seed interpreter (``fast_path=False``) on the benchmark corpus — same
simulated cycles, counters and answers — including runs with injected
faults routed through the recovery loop."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import run_query
from repro.bench.programs import SUITE
from repro.core.machine import Machine
from repro.core.symbols import SymbolTable
from repro.prolog.writer import term_to_text
from repro.recovery import FaultInjector

#: Short and medium suite programs; the long ones (qs196, nrev496,
#: hanoi12) add minutes of Hypothesis runtime without new coverage.
CORPUS = ["con1", "con6", "divide10", "log10", "nrev1", "ops8",
          "qs4", "times10"]

FAULT_HORIZON = 20_000


def observe(name, fast_path, fault_plan):
    bench = SUITE[name]
    injector = None
    if fault_plan is not None:
        # A fresh injector per run: the schedule is a pure function of
        # the constructor arguments, so both sides see the same faults.
        seed, page_faults, squeezes, spurious = fault_plan
        injector = FaultInjector(seed=seed, page_faults=page_faults,
                                 zone_squeezes=squeezes,
                                 spurious=spurious,
                                 horizon=FAULT_HORIZON)
    result = run_query(bench.source_pure, bench.query_pure,
                       all_solutions=bench.all_solutions,
                       machine=Machine(symbols=SymbolTable(),
                                       fast_path=fast_path),
                       injector=injector)
    stats = result.stats
    answers = tuple(tuple((n, term_to_text(t)) for n, t in sol.items())
                    for sol in result.solutions)
    return {
        "cycles": stats.cycles,
        "instructions": stats.instructions,
        "inferences": stats.inferences,
        "data_reads": stats.data_reads,
        "data_writes": stats.data_writes,
        "traps_raised": stats.traps_raised,
        "traps_recovered": stats.traps_recovered,
        "answers": answers,
    }


@given(name=st.sampled_from(CORPUS))
@settings(max_examples=10, deadline=None)
def test_fast_path_matches_ablation(name):
    assert observe(name, True, None) == observe(name, False, None)


@given(name=st.sampled_from(CORPUS),
       seed=st.integers(min_value=0, max_value=2**16),
       page_faults=st.integers(min_value=0, max_value=3),
       squeezes=st.integers(min_value=0, max_value=2),
       spurious=st.integers(min_value=0, max_value=3))
@settings(max_examples=15, deadline=None)
def test_fast_path_matches_ablation_under_faults(name, seed, page_faults,
                                                 squeezes, spurious):
    plan = (seed, page_faults, squeezes, spurious)
    assert observe(name, True, plan) == observe(name, False, plan)
