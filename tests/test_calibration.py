"""Calibration tests: the cycle model pinned to the paper's figures.

These are the quantitative anchors of the reproduction (DESIGN.md
section 3).  If a cost-table change breaks one of these, the simulator
no longer reproduces the paper's performance claims.
"""

import pytest

from repro.bench.tables import (
    measure_concat_step_cycles, measure_nrev_klips,
)
from repro.bench.paper_data import KCM_CON1_STEP_CYCLES
from repro.bench.runner import SuiteRunner
from repro.core.costs import CostModel, KCM_CYCLE_SECONDS
from repro.core.opcodes import ArithOp, Op


class TestPaperStatedCosts:
    """Costs the paper states explicitly."""

    def setup_method(self):
        self.costs = CostModel()

    def test_cycle_time_80ns(self):
        assert KCM_CYCLE_SECONDS == pytest.approx(80e-9)

    def test_call_return_is_five_cycles(self):
        # "the minimum for a call/return sequence which creates two
        # prefetch pipeline breaks" (section 4.2).
        assert self.costs.base[Op.CALL] + self.costs.base[Op.PROCEED] == 5

    def test_immediate_jumps_two_cycles(self):
        assert self.costs.base[Op.JUMP] == 2
        assert self.costs.base[Op.CALL] == 2

    def test_dereference_one_per_cycle(self):
        assert self.costs.deref_per_link == 1

    def test_choice_point_one_register_per_cycle(self):
        assert self.costs.cp_save_per_reg == 1
        assert self.costs.cp_restore_per_reg == 1

    def test_trail_comparators_free_in_parallel(self):
        assert self.costs.trail_check == 0

    def test_indirect_call_four_cycles(self):
        assert self.costs.indirect_call == 4

    def test_write_stub_five_cycles(self):
        assert self.costs.write_builtin == 5

    def test_float_mul_div_beat_integer(self):
        # Section 4.2: "floating arithmetic is significantly faster
        # than integer arithmetic on multiplications and divisions".
        assert self.costs.arith_float[ArithOp.MUL] \
            < self.costs.arith_int[ArithOp.MUL]
        assert self.costs.arith_float[ArithOp.DIV] \
            < self.costs.arith_int[ArithOp.DIV]

    def test_neck_free_when_flags_clear(self):
        # Flags are folded into decode (section 3.1.5).
        assert self.costs.base[Op.NECK] == 0


class TestPeakPerformance:
    """Table 4's KCM row: 833 - 760 Klips."""

    def test_concat_step_is_fifteen_cycles(self):
        step = measure_concat_step_cycles()
        assert step == pytest.approx(KCM_CON1_STEP_CYCLES, abs=0.5)

    def test_peak_concat_klips(self):
        step = measure_concat_step_cycles()
        klips = 1.0 / (step * KCM_CYCLE_SECONDS) / 1e3
        assert 780 <= klips <= 880          # paper: 833

    def test_nrev_klips(self):
        klips = measure_nrev_klips()
        assert 700 <= klips <= 880          # paper: 760


class TestSuiteMagnitudes:
    """Whole-benchmark Klips stay in the paper's order of magnitude
    and preserve the headline orderings."""

    @pytest.fixture(scope="class")
    def results(self):
        runner = SuiteRunner()
        return {name: runner.run(name, "pure")
                for name in ("nrev1", "hanoi", "query", "qs4",
                             "divide10", "pri2")}

    def test_all_in_the_hundreds_of_klips(self, results):
        for name, result in results.items():
            assert 200 <= result.klips <= 1200, (name, result.klips)

    def test_nrev_matches_paper_closely(self, results):
        # Paper: 766 Klips.
        assert results["nrev1"].klips == pytest.approx(766, rel=0.10)

    def test_list_programs_faster_than_arithmetic_programs(self, results):
        # The paper's slowest rows are the arithmetic/database programs
        # (query 229, divide10 222); the fastest are the list kernels
        # (nrev1 766, hanoi 607).
        assert results["nrev1"].klips > results["query"].klips
        assert results["nrev1"].klips > results["divide10"].klips
        assert results["hanoi"].klips > results["pri2"].klips

    def test_query_milliseconds_magnitude(self, results):
        # Paper: 12.6 ms; accept the same order of magnitude.
        assert 4.0 <= results["query"].milliseconds <= 25.0
