"""Linker/assembler tests: images, sizes, library generation, installs."""

import pytest

from repro.api import compile_and_load
from repro.compiler.linker import Linker, link_program
from repro.core.instruction import Instruction
from repro.core.machine import Machine
from repro.core.opcodes import BRANCHING_OPS, Op
from repro.core.symbols import SymbolTable
from repro.errors import LinkError

APPEND = ("append([], L, L).\n"
          "append([H|T], L, [H|R]) :- append(T, L, R).\n")


class TestAssembly:
    def test_all_branch_targets_resolved_to_ints(self):
        image = link_program(APPEND, "append([1], [2], X)")
        for instr in image.code:
            if instr is None:
                continue
            if instr.op in BRANCHING_OPS:
                assert isinstance(instr.a, int), instr.disassemble()
            if instr.op is Op.SWITCH_ON_TERM:
                for operand in (instr.a, instr.b, instr.c, instr.d):
                    assert operand is None or isinstance(operand, int)

    def test_multi_word_instructions_padded(self):
        image = link_program("f(a). f(b). f(c).", "f(X)")
        switches = [a for a, i in enumerate(image.code)
                    if i is not None and i.op is Op.SWITCH_ON_CONSTANT]
        assert switches
        address = switches[0]
        size = image.code[address].size
        assert size > 1
        assert all(image.code[address + k] is None
                   for k in range(1, size))

    def test_entry_is_query_predicate(self):
        image = link_program(APPEND, "append([], [], X)")
        assert image.entry == image.predicates[("$query", 0)]

    def test_code_addresses_are_dense(self):
        image = link_program(APPEND, "append([], [], X)")
        address = 0
        while address < len(image.code):
            instr = image.code[address]
            assert instr is not None
            address += instr.size


class TestRuntimeLibrary:
    def test_undefined_predicate_reported(self):
        with pytest.raises(LinkError, match="missing_thing/2"):
            link_program("f(X) :- missing_thing(X, 1).", "f(a)")

    def test_builtins_get_escape_stubs(self):
        image = link_program("t(X) :- integer(X).", "t(3)")
        assert ("integer", 1) in image.predicates
        address = image.predicates[("integer", 1)]
        assert image.code[address].op is Op.ESCAPE

    def test_io_stub_mode_compiles_write_as_unit_clause(self):
        image = link_program("t :- write(x), nl.", "t", io_mode="stub")
        address = image.predicates[("write", 1)]
        assert image.code[address].op is Op.NECK
        assert image.code[address + 1].op is Op.PROCEED

    def test_io_real_mode_uses_escapes(self):
        image = link_program("t :- write(x).", "t", io_mode="real")
        address = image.predicates[("write", 1)]
        assert image.code[address].op is Op.ESCAPE

    def test_bad_io_mode_rejected(self):
        with pytest.raises(LinkError):
            Linker(io_mode="loud")

    def test_user_definition_shadows_builtin_stub(self):
        # A user-defined write/1 wins over the library version.
        image = link_program("write(custom).\nt :- write(custom).", "t")
        address = image.predicates[("write", 1)]
        assert image.code[address].op is not Op.ESCAPE


class TestStaticSizes:
    def test_sizes_cover_program_and_driver_not_library(self):
        image = link_program("f(X) :- write(X).", "f(hello)")
        assert ("f", 1) in image.sizes
        assert ("$query", 0) in image.sizes
        assert ("write", 1) not in image.sizes

    def test_bytes_are_eight_per_word(self):
        image = link_program(APPEND, "append([], [], X)")
        assert image.program_bytes == 8 * image.program_words

    def test_instruction_count_below_word_count_with_switches(self):
        image = link_program("f(a). f(b). f(c).", "f(a)")
        assert image.program_instructions < image.program_words


class TestInstall:
    def test_install_requires_shared_symbols(self):
        image = link_program(APPEND, "append([], [], X)")
        other = Machine(symbols=SymbolTable())
        with pytest.raises(LinkError):
            image.install(other)

    def test_reinstall_resets_stub_cache(self):
        machine = compile_and_load(APPEND, "append([1], [], X)")
        machine.run(machine.image.entry, answer_names=["X"])
        first = machine.solutions[0]["X"]
        image2 = Linker(symbols=machine.symbols).link(
            APPEND, "append([2], [], X)")
        image2.install(machine)
        machine.run(image2.entry, answer_names=["X"])
        assert machine.solutions[0]["X"] != first
