"""Direct instruction-level machine tests (hand-assembled code).

These bypass the compiler to pin down individual instruction semantics
— the machine equivalent of the microcode test programs that verified
the first KCM prototypes.
"""

import pytest

from repro.core.instruction import Instruction
from repro.core.machine import Machine
from repro.core.opcodes import ArithOp, Op
from repro.core.opcodes import TestOp as Relation
from repro.core.symbols import SymbolTable
from repro.core.tags import Type, Zone
from repro.core.word import make_float, make_int


def build_machine(*instructions):
    """A machine whose entry point runs the given instructions; the
    caller appends its own control flow (default: halt via stub)."""
    machine = Machine(symbols=SymbolTable())
    entry = len(machine.code)
    for instr in instructions:
        machine.code.append(instr)
        for _ in range(instr.size - 1):
            machine.code.append(None)
    machine.code.append(Instruction(Op.PROCEED))
    return machine, entry


def run(machine, entry):
    machine.run(entry)
    return machine


class TestMoves:
    def test_move2_moves_both(self):
        machine, entry = build_machine(
            Instruction(Op.PUT_CONSTANT, make_int(1), 4),
            Instruction(Op.PUT_CONSTANT, make_int(2), 5),
            Instruction(Op.MOVE2, 4, 0, 5, 1))
        run(machine, entry)
        assert machine.regs.x(0) == make_int(1)
        assert machine.regs.x(1) == make_int(2)

    def test_put_constant(self):
        machine, entry = build_machine(
            Instruction(Op.PUT_CONSTANT, make_float(2.5), 3))
        run(machine, entry)
        assert machine.regs.x(3).type is Type.FLOAT


class TestArithInstruction:
    @pytest.mark.parametrize("op,left,right,expected", [
        (ArithOp.ADD, 3, 4, 7),
        (ArithOp.SUB, 3, 4, -1),
        (ArithOp.MUL, 6, 7, 42),
        (ArithOp.IDIV, 9, 2, 4),
        (ArithOp.MOD, 9, 2, 1),
        (ArithOp.MIN, 9, 2, 2),
        (ArithOp.MAX, 9, 2, 9),
        (ArithOp.AND, 6, 3, 2),
        (ArithOp.OR, 6, 3, 7),
        (ArithOp.XOR, 6, 3, 5),
        (ArithOp.SHL, 3, 2, 12),
        (ArithOp.SHR, 12, 2, 3),
    ])
    def test_integer_ops(self, op, left, right, expected):
        machine, entry = build_machine(
            Instruction(Op.PUT_CONSTANT, make_int(left), 1),
            Instruction(Op.PUT_CONSTANT, make_int(right), 2),
            Instruction(Op.ARITH, op, 1, 2, 0))
        run(machine, entry)
        assert machine.regs.x(0) == make_int(expected)

    def test_integer_multiply_costs_the_microcode_loop(self):
        cheap, entry1 = build_machine(
            Instruction(Op.PUT_CONSTANT, make_int(3), 1),
            Instruction(Op.PUT_CONSTANT, make_int(4), 2),
            Instruction(Op.ARITH, ArithOp.ADD, 1, 2, 0))
        costly, entry2 = build_machine(
            Instruction(Op.PUT_CONSTANT, make_int(3), 1),
            Instruction(Op.PUT_CONSTANT, make_int(4), 2),
            Instruction(Op.ARITH, ArithOp.MUL, 1, 2, 0))
        run(cheap, entry1)
        run(costly, entry2)
        assert costly.cycles - cheap.cycles \
            == cheap.costs.arith_int[ArithOp.MUL] - 1

    def test_float_promotion(self):
        machine, entry = build_machine(
            Instruction(Op.PUT_CONSTANT, make_int(1), 1),
            Instruction(Op.PUT_CONSTANT, make_float(0.5), 2),
            Instruction(Op.ARITH, ArithOp.ADD, 1, 2, 0))
        run(machine, entry)
        assert machine.regs.x(0) == make_float(1.5)


class TestTestInstruction:
    def test_passing_test_continues(self):
        machine, entry = build_machine(
            Instruction(Op.PUT_CONSTANT, make_int(1), 1),
            Instruction(Op.PUT_CONSTANT, make_int(2), 2),
            Instruction(Op.TEST, Relation.LT, 1, 2),
            Instruction(Op.PUT_CONSTANT, make_int(99), 0))
        run(machine, entry)
        assert machine.regs.x(0) == make_int(99)

    def test_failing_test_backtracks_to_exhaustion(self):
        machine, entry = build_machine(
            Instruction(Op.PUT_CONSTANT, make_int(5), 1),
            Instruction(Op.PUT_CONSTANT, make_int(2), 2),
            Instruction(Op.TEST, Relation.LT, 1, 2))
        run(machine, entry)
        assert machine.exhausted


class TestHeapInstructions:
    def test_put_list_and_unify_write(self):
        machine, entry = build_machine(
            Instruction(Op.PUT_LIST, 0),
            Instruction(Op.UNIFY_CONSTANT, make_int(7)),
            Instruction(Op.UNIFY_NIL))
        run(machine, entry)
        word = machine.regs.x(0)
        assert word.type is Type.LIST
        store = machine.memory.store
        assert store.read(word.value) == make_int(7)
        assert store.read(word.value + 1).type is Type.NIL

    def test_get_list_read_mode(self):
        machine, entry = build_machine(
            Instruction(Op.PUT_LIST, 0),
            Instruction(Op.UNIFY_CONSTANT, make_int(7)),
            Instruction(Op.UNIFY_NIL),
            Instruction(Op.GET_LIST, 0),
            Instruction(Op.UNIFY_X_VARIABLE, 3),
            Instruction(Op.UNIFY_X_VARIABLE, 4))
        run(machine, entry)
        assert machine.deref(machine.regs.x(3)) == make_int(7)
        assert machine.deref(machine.regs.x(4)).type is Type.NIL

    def test_unify_void_skips_in_read_mode(self):
        machine, entry = build_machine(
            Instruction(Op.PUT_LIST, 0),
            Instruction(Op.UNIFY_CONSTANT, make_int(1)),
            Instruction(Op.UNIFY_CONSTANT, make_int(2)),
            Instruction(Op.GET_LIST, 0),
            Instruction(Op.UNIFY_VOID, 1),
            Instruction(Op.UNIFY_X_VARIABLE, 3))
        run(machine, entry)
        assert machine.deref(machine.regs.x(3)) == make_int(2)

    def test_get_structure_write_mode_builds_functor(self):
        symbols = SymbolTable()
        machine = Machine(symbols=symbols)
        findex = symbols.functor_index("f", 2)
        entry = len(machine.code)
        for instr in (Instruction(Op.PUT_X_VARIABLE, 0, 0),
                      Instruction(Op.GET_STRUCTURE, findex, 0),
                      Instruction(Op.UNIFY_CONSTANT, make_int(1)),
                      Instruction(Op.UNIFY_CONSTANT, make_int(2)),
                      Instruction(Op.PROCEED)):
            machine.code.append(instr)
        machine.run(entry)
        word = machine.deref(machine.regs.x(0))
        assert word.type is Type.STRUCT
        functor = machine.memory.store.read(word.value)
        assert symbols.functor_key(int(functor.value)) == ("f", 2)


class TestGenUnify:
    def test_success_binds(self):
        machine, entry = build_machine(
            Instruction(Op.PUT_X_VARIABLE, 1, 1),
            Instruction(Op.PUT_CONSTANT, make_int(9), 2),
            Instruction(Op.GEN_UNIFY, 1, 2))
        run(machine, entry)
        assert machine.deref(machine.regs.x(1)) == make_int(9)

    def test_failure_backtracks(self):
        machine, entry = build_machine(
            Instruction(Op.PUT_CONSTANT, make_int(1), 1),
            Instruction(Op.PUT_CONSTANT, make_int(2), 2),
            Instruction(Op.GEN_UNIFY, 1, 2))
        run(machine, entry)
        assert machine.exhausted
