"""CLI smoke tests and table-harness assertions on fast subsets."""

import pytest

from repro.bench.cli import main
from repro.bench.tables import table2, table3


class TestCLI:
    def test_figures_target(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "Figure 7" in out

    def test_cache_experiment_target(self, capsys):
        assert main(["cache-experiment"]) == 0
        out = capsys.readouterr().out
        assert "hit ratio" in out

    def test_table4_target(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "KCM" in out and "PSI-II" in out
        assert "[measured]" in out and "[published]" in out

    def test_bad_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["table9"])


class TestExecutionTablesSubset:
    """Table 2/3 harnesses on a 3-program subset (fast enough for the
    unit-test run; the full tables live in benchmarks/)."""

    SUBSET = ["con1", "nrev1", "hanoi"]

    def test_table2_subset_shape(self):
        result = table2(programs=self.SUBSET)
        assert set(result.data) == set(self.SUBSET)
        for name, row in result.data.items():
            assert row["ratio"] > 1.0, name          # KCM wins
            assert row["kcm_klips"] > 100
        # Rendering carries paper reference columns.
        assert "paper" in result.render()

    def test_table3_subset_shape(self):
        result = table3(programs=self.SUBSET)
        for name, row in result.data.items():
            assert row["ratio"] > 2.0, name
        assert result.data["nrev1"]["ratio"] == pytest.approx(5.08,
                                                              rel=0.2)

    def test_inferences_match_paper_in_tables(self):
        from repro.bench import paper_data
        result = table2(programs=["con1", "nrev1"])
        assert result.data["con1"]["inferences"] \
            == paper_data.TABLE2["con1"].inferences
        assert result.data["nrev1"]["inferences"] \
            == paper_data.TABLE2["nrev1"].inferences


class TestTableRendering:
    def test_render_is_aligned(self):
        result = table2(programs=["con1"])
        lines = result.render().splitlines()
        header = next(l for l in lines if "Program" in l)
        row = next(l for l in lines if l.startswith("con1"))
        assert len(row) <= len(header) + 8
