"""Property-based tests of the zone-check limit-move primitives.

The trap handlers lean on two guarantees (see ``docs/TRAPS.md``):
``move_limits`` never lets two zones' granule ranges overlap no matter
what sequence of moves is attempted, and the overflow trap fires
exactly at the granule boundary the hardware comparators see."""

from hypothesis import given, settings, strategies as st
import pytest

from repro.core.tags import Type, Zone, ZONE_GRANULE_WORDS
from repro.errors import StackOverflowTrap
from repro.memory.zones import ZoneChecker, _granule_ceil, _granule_floor

STACK_ZONES = [Zone.GLOBAL, Zone.LOCAL, Zone.CONTROL, Zone.TRAIL]

# A move attempt: which zone, how many granules past its own base the
# new max should sit.  Large spans are deliberately allowed so many
# attempts collide with a neighbour and must be refused.
moves = st.lists(
    st.tuples(st.sampled_from(STACK_ZONES),
              st.integers(min_value=1, max_value=0x400)),
    min_size=1, max_size=40)


def granule_ranges(checker):
    return {zone: (_granule_floor(entry.min_address),
                   _granule_ceil(entry.max_address))
            for zone, entry in checker.entries.items()}


class TestMoveLimitsProperties:
    @given(moves)
    @settings(max_examples=80, deadline=None)
    def test_zones_never_overlap(self, sequence):
        """After any sequence of move attempts — accepted or refused —
        every pair of zone granule ranges is disjoint."""
        checker = ZoneChecker()
        for zone, granules in sequence:
            entry = checker.entries[zone]
            new_max = entry.min_address + granules * ZONE_GRANULE_WORDS
            try:
                checker.move_limits(zone, entry.min_address, new_max)
            except ValueError:
                pass
            spans = sorted(granule_ranges(checker).values())
            for (_, high), (low, _) in zip(spans, spans[1:]):
                assert high <= low

    @given(moves)
    @settings(max_examples=80, deadline=None)
    def test_accepted_moves_took_effect(self, sequence):
        """A move that does not raise really moved the limit; a refused
        move left it untouched."""
        checker = ZoneChecker()
        for zone, granules in sequence:
            entry = checker.entries[zone]
            before = (entry.min_address, entry.max_address)
            new_max = entry.min_address + granules * ZONE_GRANULE_WORDS
            try:
                checker.move_limits(zone, entry.min_address, new_max)
            except ValueError:
                assert (entry.min_address, entry.max_address) == before
            else:
                assert entry.max_address == new_max

    @given(st.sampled_from(STACK_ZONES))
    @settings(max_examples=20, deadline=None)
    def test_headroom_is_exact(self, zone):
        """Growing by exactly the reported headroom succeeds; one more
        granule collides with a neighbour (or leaves the address space)
        and is refused."""
        checker = ZoneChecker()
        entry = checker.entries[zone]
        room = checker.headroom(zone)
        top = _granule_ceil(entry.max_address)
        checker.move_limits(zone, entry.min_address, top + room)
        with pytest.raises(ValueError):
            checker.move_limits(zone, entry.min_address,
                                top + room + ZONE_GRANULE_WORDS)

    @given(st.sampled_from(STACK_ZONES))
    @settings(max_examples=20, deadline=None)
    def test_degenerate_moves_are_refused(self, zone):
        checker = ZoneChecker()
        entry = checker.entries[zone]
        with pytest.raises(ValueError):
            checker.move_limits(zone, entry.min_address,
                                entry.min_address - 1)


class TestOverflowBoundaryProperties:
    @given(st.sampled_from(STACK_ZONES),
           st.integers(min_value=1, max_value=0x40),
           st.integers(min_value=-3, max_value=3))
    @settings(max_examples=120, deadline=None)
    def test_trap_fires_exactly_at_the_granule_boundary(
            self, zone, granules, offset):
        """Accesses below ``granule_ceil(max_address)`` pass; the first
        address at the boundary raises StackOverflowTrap — exactly the
        comparator semantics of section 3.2.3."""
        checker = ZoneChecker()
        entry = checker.entries[zone]
        new_max = entry.min_address + granules * ZONE_GRANULE_WORDS
        checker.move_limits(zone, entry.min_address, new_max)
        boundary = _granule_ceil(new_max)
        address = boundary + offset
        word_type = next(iter(entry.allowed_types))
        if _granule_floor(entry.min_address) <= address < boundary:
            checker.check(zone, address, word_type, is_write=False)
        else:
            with pytest.raises(StackOverflowTrap):
                checker.check(zone, address, word_type, is_write=False)

    @given(st.sampled_from(STACK_ZONES),
           st.integers(min_value=0, max_value=ZONE_GRANULE_WORDS - 1))
    @settings(max_examples=60, deadline=None)
    def test_unaligned_max_rounds_up_to_its_granule(self, zone, slack):
        """An unaligned max_address still protects through the end of
        its granule: the hardware compares bits 27..12 only."""
        checker = ZoneChecker()
        entry = checker.entries[zone]
        new_max = entry.min_address + ZONE_GRANULE_WORDS + slack
        checker.move_limits(zone, entry.min_address, new_max)
        word_type = next(iter(entry.allowed_types))
        last_legal = _granule_ceil(new_max) - 1
        checker.check(zone, last_legal, word_type, is_write=False)
        with pytest.raises(StackOverflowTrap):
            checker.check(zone, last_legal + 1, word_type, is_write=False)
