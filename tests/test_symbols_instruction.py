"""Unit tests for the symbol tables and instruction metadata."""

import pytest

from repro.core.instruction import Instruction, disassemble_range
from repro.core.opcodes import (
    BRANCHING_OPS, Format, OP_INFO, Op,
)
from repro.core.symbols import SymbolTable
from repro.core.tags import Type
from repro.core.word import make_int


class TestSymbolTable:
    def test_atom_interning_is_stable(self):
        table = SymbolTable()
        first = table.atom_index("hello")
        second = table.atom_index("hello")
        assert first == second
        assert table.atom_name(first) == "hello"

    def test_nil_reserved_at_zero(self):
        table = SymbolTable()
        assert table.atom_index("[]") == 0

    def test_atom_word_for_nil_is_nil_typed(self):
        table = SymbolTable()
        assert table.atom_word("[]").type is Type.NIL
        assert table.atom_word("foo").type is Type.ATOM

    def test_functor_keyed_by_name_and_arity(self):
        table = SymbolTable()
        f1 = table.functor_index("f", 1)
        f2 = table.functor_index("f", 2)
        assert f1 != f2
        assert table.functor_key(f1) == ("f", 1)
        assert table.functor_name(f2) == "f/2"

    def test_counts(self):
        table = SymbolTable()
        table.atom_index("a")
        table.functor_index("g", 3)
        assert table.atom_count == 2           # '[]' plus 'a'
        assert table.functor_count == 1

    def test_describe_constant(self):
        table = SymbolTable()
        assert table.describe_constant(table.atom_word("abc")) == "abc"
        assert table.describe_constant(make_int(9)) == "9"


class TestOpcodeMetadata:
    def test_every_opcode_has_info(self):
        for op in Op:
            assert op in OP_INFO

    def test_formats_partition(self):
        for op, info in OP_INFO.items():
            assert info.format in (Format.R4, Format.ADDR)
            assert info.base_words >= 1

    def test_switch_on_term_is_two_words(self):
        assert OP_INFO[Op.SWITCH_ON_TERM].base_words == 2

    def test_branching_ops_use_address_format(self):
        for op in BRANCHING_OPS:
            assert OP_INFO[op].format is Format.ADDR


class TestInstruction:
    def test_size_defaults_from_opcode(self):
        assert Instruction(Op.PROCEED).size == 1
        assert Instruction(Op.SWITCH_ON_TERM, 1, 2, 3, 4).size == 2

    def test_switch_table_grows_size(self):
        table = {("k", i): i for i in range(5)}
        instr = Instruction(Op.SWITCH_ON_CONSTANT, table, None)
        assert instr.size == 1 + 5

    def test_disassemble_shows_fields(self):
        text = Instruction(Op.CALL, 42, 2).disassemble()
        assert "call" in text and "42" in text and "2" in text

    def test_disassemble_marks_inference_goals(self):
        assert "; goal" in Instruction(Op.CALL, 0, 0,
                                       infer=True).disassemble()

    def test_disassemble_range_skips_padding(self):
        code = [Instruction(Op.SWITCH_ON_TERM, 0, 1, 2, 3), None,
                Instruction(Op.PROCEED)]
        text = disassemble_range(code, 0, 3)
        lines = text.splitlines()
        assert len(lines) == 2
        assert "switch_on_term" in lines[0]
        assert "proceed" in lines[1]

    def test_word_operand_rendered(self):
        text = Instruction(Op.PUT_CONSTANT, make_int(7), 0).disassemble()
        assert "INT" in text
