"""Property: superinstruction fusion is observation-equivalent to both
the unfused fast path (``Features(superops=False)``) and the seed
interpreter (``fast_path=False``) on the benchmark corpus — same
solutions, same full RunStats, same trap/replay behaviour under
injected faults."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import run_query
from repro.bench.programs import SUITE
from repro.core.costs import Features
from repro.core.machine import Machine
from repro.core.symbols import SymbolTable
from repro.prolog.writer import term_to_text
from repro.recovery import FaultInjector

#: Short and medium suite programs, like test_props_fastpath; the
#: corpus leans on programs whose hot blocks the committed fusion
#: table actually covers (arithmetic, list recursion, backtracking).
CORPUS = ["con1", "con6", "divide10", "log10", "nrev1", "ops8",
          "qs4", "times10"]

FAULT_HORIZON = 20_000

MODES = {
    "fused": dict(fast_path=True, features=None),
    "unfused": dict(fast_path=True, features=Features(superops=False)),
    "seed": dict(fast_path=False, features=None),
}


def observe(name, mode, fault_plan):
    bench = SUITE[name]
    injector = None
    if fault_plan is not None:
        seed, page_faults, squeezes, spurious = fault_plan
        injector = FaultInjector(seed=seed, page_faults=page_faults,
                                 zone_squeezes=squeezes,
                                 spurious=spurious,
                                 horizon=FAULT_HORIZON)
    config = MODES[mode]
    machine = Machine(symbols=SymbolTable(),
                      fast_path=config["fast_path"],
                      features=config["features"])
    result = run_query(bench.source_pure, bench.query_pure,
                       all_solutions=bench.all_solutions,
                       machine=machine, injector=injector)
    stats = result.stats
    answers = tuple(tuple((n, term_to_text(t)) for n, t in sol.items())
                    for sol in result.solutions)
    return {
        "cycles": stats.cycles,
        "instructions": stats.instructions,
        "inferences": stats.inferences,
        "data_reads": stats.data_reads,
        "data_writes": stats.data_writes,
        "trail_pushes": stats.trail_pushes,
        "trail_checks": stats.trail_checks,
        "shallow_fails": stats.shallow_fails,
        "deep_fails": stats.deep_fails,
        "choice_points_created": stats.choice_points_created,
        "general_unifications": stats.general_unifications,
        "dereference_links": stats.dereference_links,
        "traps_raised": stats.traps_raised,
        "traps_recovered": stats.traps_recovered,
        "answers": answers,
    }


@given(name=st.sampled_from(CORPUS))
@settings(max_examples=10, deadline=None)
def test_fused_matches_unfused_and_seed(name):
    fused = observe(name, "fused", None)
    assert fused == observe(name, "unfused", None)
    assert fused == observe(name, "seed", None)


@given(name=st.sampled_from(CORPUS),
       seed=st.integers(min_value=0, max_value=2**16),
       page_faults=st.integers(min_value=0, max_value=3),
       squeezes=st.integers(min_value=0, max_value=2),
       spurious=st.integers(min_value=0, max_value=3))
@settings(max_examples=12, deadline=None)
def test_fused_matches_unfused_under_faults(name, seed, page_faults,
                                            squeezes, spurious):
    plan = (seed, page_faults, squeezes, spurious)
    fused = observe(name, "fused", plan)
    assert fused == observe(name, "unfused", plan)
    assert fused == observe(name, "seed", plan)
