"""Unit tests for clause code generation."""

import pytest

from repro.compiler.codegen import (
    compile_clause, fold_constant, peephole,
)
from repro.compiler.normalize import normalize_program
from repro.core.instruction import Instruction
from repro.core.opcodes import Op
from repro.core.symbols import SymbolTable
from repro.prolog.parser import parse_program, parse_term


def compile_text(text):
    program = normalize_program(parse_program(text))
    symbols = SymbolTable()
    items = compile_clause(program.clauses[0], symbols)
    return [i for i in items if isinstance(i, Instruction)], symbols


def opcodes(text):
    instrs, _ = compile_text(text)
    return [i.op for i in instrs]


class TestFacts:
    def test_atom_fact(self):
        assert opcodes("f.") == [Op.NECK, Op.PROCEED]

    def test_constant_head_args(self):
        ops = opcodes("f(a, 1, []).")
        assert ops == [Op.GET_CONSTANT, Op.GET_CONSTANT, Op.GET_NIL,
                       Op.NECK, Op.PROCEED]

    def test_void_head_variable_emits_nothing(self):
        assert opcodes("f(_).") == [Op.NECK, Op.PROCEED]

    def test_repeated_head_variable(self):
        ops = opcodes("f(X, X).")
        assert Op.GET_X_VALUE in ops

    def test_list_head(self):
        ops = opcodes("f([H|T]).")
        assert ops[0] == Op.GET_LIST
        assert ops.count(Op.UNIFY_X_VARIABLE) <= 2

    def test_nested_structure_head(self):
        ops = opcodes("f(g(h(X))).")
        assert ops.count(Op.GET_STRUCTURE) == 2

    def test_neck_carries_arity(self):
        instrs, _ = compile_text("f(a, b, c).")
        neck = next(i for i in instrs if i.op is Op.NECK)
        assert neck.a == 3


class TestAppendClause:
    """The canonical recursive clause: the paper's con1 kernel."""

    TEXT = "append([H|T], L, [H|R]) :- append(T, L, R)."

    def test_no_environment(self):
        ops = opcodes(self.TEXT)
        assert Op.ALLOCATE not in ops
        assert Op.EXECUTE in ops

    def test_pass_through_argument_needs_no_code(self):
        # L stays in A2 untouched: no instruction mentions it.
        instrs, _ = compile_text(self.TEXT)
        # 2 get_list + 4 unify + neck + puts + execute; L contributes 0.
        ops = [i.op for i in instrs]
        assert ops.count(Op.GET_LIST) == 2
        assert Op.PUT_X_VALUE in ops or Op.MOVE2 in ops

    def test_argument_registers_untouched_before_neck(self):
        """The shallow-backtracking compiler discipline (section 3.1.5):
        nothing may overwrite A1..An before NECK."""
        instrs, _ = compile_text(self.TEXT)
        arity = 3
        for instr in instrs:
            if instr.op is Op.NECK:
                break
            if instr.op in (Op.GET_X_VARIABLE, Op.UNIFY_X_VARIABLE):
                target = instr.a
                assert target >= arity, (
                    f"{instr.disassemble()} clobbers an argument register "
                    f"before the neck")


class TestEnvironments:
    def test_allocate_after_neck(self):
        ops = opcodes("f(X) :- g(X), h(X).")
        assert ops.index(Op.NECK) < ops.index(Op.ALLOCATE)

    def test_deallocate_before_final_execute(self):
        ops = opcodes("f(X) :- g(X), h(X).")
        assert ops[-2:] == [Op.DEALLOCATE, Op.EXECUTE]

    def test_call_carries_trimmed_nperms(self):
        instrs, _ = compile_text("f(A, B) :- g(A, B), h(A), i(A).")
        calls = [i for i in instrs if i.op is Op.CALL]
        assert [c.b for c in calls] == [1, 1]

    def test_permanent_staged_through_temporary(self):
        # Head permanents are copied into Y slots after ALLOCATE.
        ops = opcodes("f(X) :- g(X), h(X).")
        assert Op.GET_Y_VARIABLE in ops
        assert ops.index(Op.ALLOCATE) < ops.index(Op.GET_Y_VARIABLE)


class TestCut:
    def test_neck_cut(self):
        ops = opcodes("f(X) :- !, g(X).")
        assert Op.NECK_CUT in ops
        assert Op.NECK not in ops

    def test_inline_cut_before_first_call(self):
        ops = opcodes("f(X) :- X > 1, !, g(X).")
        assert Op.CUT not in ops        # guard then cut = still neck cut
        assert Op.NECK_CUT in ops or Op.CUT in ops

    def test_deep_cut_uses_saved_level(self):
        ops = opcodes("f(X) :- g(X), !, h(X).")
        assert Op.GET_LEVEL in ops
        assert Op.CUT_Y in ops


class TestArithmetic:
    def test_constant_folding(self):
        assert fold_constant(parse_term("3*4+2")) == 14
        assert fold_constant(parse_term("7 // 2")) == 3
        assert fold_constant(parse_term("-(3)")) is -3 or \
            fold_constant(parse_term("-(3)")) == -3
        assert fold_constant(parse_term("X + 1")) is None
        assert fold_constant(parse_term("1 // 0")) is None

    def test_folded_expression_is_one_constant(self):
        ops = opcodes("f(X) :- X is 3*4+2.")
        assert Op.ARITH not in ops
        assert Op.PUT_CONSTANT in ops

    def test_unfolded_expression_emits_arith(self):
        ops = opcodes("f(X, Y) :- Y is X * 2 + 1.")
        assert ops.count(Op.ARITH) == 2

    def test_comparison_emits_test(self):
        ops = opcodes("f(X, Y) :- X > Y + 1.")
        assert Op.TEST in ops
        assert Op.ARITH in ops

    def test_guard_tests_precede_neck(self):
        ops = opcodes("max(X, Y, X) :- X >= Y.")
        assert ops.index(Op.TEST) < ops.index(Op.NECK)

    def test_is_to_fresh_variable_needs_no_unify(self):
        # Y first occurs as the is/2 target: the result register simply
        # becomes Y's home.
        ops = opcodes("f(X) :- Y is X + 1, g(Y).")
        assert Op.GEN_UNIFY not in ops

    def test_is_to_bound_variable_unifies(self):
        ops = opcodes("f(X) :- X is 2 + 2.")
        # X is a head variable: result must be unified with it.
        assert Op.GEN_UNIFY in ops


class TestUnifyGoal:
    def test_fresh_variable_assignment_is_free(self):
        ops = opcodes("f(Y) :- X = f(Y), g(X).")
        assert Op.GEN_UNIFY not in ops

    def test_two_bound_sides_unify(self):
        ops = opcodes("f(X, Y) :- X = Y.")
        assert Op.GEN_UNIFY in ops

    def test_structure_built_for_unify(self):
        ops = opcodes("f(X) :- X = point(1, 2).")
        assert Op.PUT_STRUCTURE in ops


class TestInferenceMarks:
    def test_each_body_goal_marked_once(self):
        instrs, _ = compile_text("f(X) :- g(X), h(X), i(X).")
        assert sum(1 for i in instrs if i.infer) == 3

    def test_cut_not_marked(self):
        instrs, _ = compile_text("f(X) :- !, g(X).")
        assert sum(1 for i in instrs if i.infer) == 1

    def test_inline_arithmetic_marked(self):
        instrs, _ = compile_text("f(X, Y) :- Y is X + 1, Y > 0.")
        assert sum(1 for i in instrs if i.infer) == 2

    def test_head_unification_not_marked(self):
        instrs, _ = compile_text("f([H|T], g(H), T).")
        assert sum(1 for i in instrs if i.infer) == 0


class TestPeephole:
    def test_adjacent_moves_merge_into_move2(self):
        moves = [Instruction(Op.GET_X_VARIABLE, 5, 0),
                 Instruction(Op.GET_X_VARIABLE, 6, 1)]
        out = peephole(moves)
        assert len(out) == 1
        assert out[0].op is Op.MOVE2

    def test_identity_move_dropped(self):
        out = peephole([Instruction(Op.GET_X_VARIABLE, 4, 4)])
        assert out == []

    def test_dependent_moves_not_merged(self):
        # Second move reads the first move's destination.
        moves = [Instruction(Op.GET_X_VARIABLE, 5, 0),
                 Instruction(Op.GET_X_VARIABLE, 6, 5)]
        out = peephole(moves)
        assert len(out) == 2
