"""Tests for the execution monitors (the paper's three-level monitors)."""

import pytest

from repro.api import compile_and_load
from repro.core.monitor import (
    CycleProfiler, MacrocodeTracer, PortTracer, attach,
)

APPEND = ("append([], L, L).\n"
          "append([H|T], L, [H|R]) :- append(T, L, R).\n")

MEMBER = ("member(X, [X|_]).\n"
          "member(X, [_|T]) :- member(X, T).\n")


def run_traced(program, query, tracer, all_solutions=False):
    machine = compile_and_load(program, query)
    attach(machine, tracer)
    machine.run(machine.image.entry, collect_all=all_solutions,
                answer_names=machine.image.query_variable_names)
    return machine


class TestMacrocodeTracer:
    def test_records_every_instruction(self):
        tracer = MacrocodeTracer()
        machine = run_traced(APPEND, "append([a], [b], X)", tracer)
        assert len(tracer.records) == machine.stats.instructions

    def test_window_filters(self):
        tracer = MacrocodeTracer(window=(0, 1))
        run_traced(APPEND, "append([a], [b], X)", tracer)
        assert all(r.address == 0 for r in tracer.records)

    def test_limit_drops_excess(self):
        tracer = MacrocodeTracer(limit=5)
        run_traced(APPEND, "append([a,b,c], [d], X)", tracer)
        assert len(tracer.records) == 5
        assert tracer.dropped > 0

    def test_render_contains_disassembly(self):
        tracer = MacrocodeTracer()
        run_traced(APPEND, "append([a], [], X)", tracer)
        text = tracer.render(last=10)
        assert "execute" in text or "proceed" in text

    def test_untraced_run_is_identical(self):
        plain = compile_and_load(APPEND, "append([a,b], [c], X)")
        stats_plain = plain.run(plain.image.entry, answer_names=["X"])
        traced = run_traced(APPEND, "append([a,b], [c], X)",
                            MacrocodeTracer())
        assert traced.stats.cycles == stats_plain.cycles
        assert traced.stats.instructions == stats_plain.instructions


class TestPortTracer:
    def test_deterministic_call_exit_nesting(self):
        tracer = PortTracer()
        run_traced(APPEND, "append([a], [b], X)", tracer)
        ports = tracer.ports()
        assert ports.count("call") >= 2          # two append steps
        assert ports[-1] == "exit" or "exit" in ports
        assert "redo" not in ports

    def test_redo_on_backtracking(self):
        tracer = PortTracer()
        run_traced(MEMBER, "member(X, [1, 2])", tracer,
                   all_solutions=True)
        assert "redo" in tracer.ports()

    def test_depth_grows_with_nesting(self):
        # Non-tail calls (each clause has a second goal) so last-call
        # optimisation does not flatten the depth.
        program = "a :- b, t. b :- c, t. c. t."
        tracer = PortTracer()
        run_traced(program, "a", tracer)
        call_depths = [e.depth for e in tracer.events
                       if e.port == "call"]
        assert max(call_depths) >= 3

    def test_last_call_optimisation_visible(self):
        # Chain rules EXECUTE: the depth stays flat, exactly as the
        # frames behave on the machine.
        tracer = PortTracer()
        run_traced("a :- b. b :- c. c.", "a", tracer)
        call_depths = [e.depth for e in tracer.events
                       if e.port == "call"]
        assert len(set(call_depths)) == 1

    def test_internal_predicates_hidden(self):
        tracer = PortTracer()
        run_traced(APPEND, "append([], [], X)", tracer)
        assert not any("$" in e.predicate for e in tracer.events)

    def test_render_indents(self):
        tracer = PortTracer()
        run_traced("a :- b. b.", "a", tracer)
        lines = tracer.render().splitlines()
        assert any(line.startswith("  ") for line in lines)


class TestCycleProfiler:
    def test_cycles_attributed_to_predicates(self):
        profiler = CycleProfiler()
        machine = run_traced(APPEND, "append([a,b,c,d], [e], X)",
                             profiler)
        assert "append/3" in profiler.cycles_by_predicate
        attributed = sum(profiler.cycles_by_predicate.values())
        assert 0 < attributed <= machine.cycles

    def test_hot_predicate_dominates(self):
        profiler = CycleProfiler()
        long_list = "[" + ",".join(str(i) for i in range(40)) + "]"
        run_traced(APPEND, f"append({long_list}, [x], X)", profiler)
        by_pred = profiler.cycles_by_predicate
        # $query builds the 40-element input list; among real
        # predicates append dominates.
        user_preds = {k: v for k, v in by_pred.items()
                      if not k.startswith("$") and k != "?"}
        assert user_preds["append/3"] == max(user_preds.values())

    def test_report_renders_percentages(self):
        profiler = CycleProfiler()
        run_traced(APPEND, "append([a], [], X)", profiler)
        assert "%" in profiler.report()


class TestReplayTracing:
    """Regression: monitors used to see a trapped-and-replayed
    instruction twice.  The recovering loop now passes ``replay=True``
    on the second delivery so traces match the fault-free run."""

    QUERY = "append([a,b,c,d,e,f], [g], X)"

    def _trace(self, injector=None):
        from repro.recovery import install_default_recovery
        tracer = MacrocodeTracer()
        machine = compile_and_load(APPEND, self.QUERY)
        attach(machine, tracer)
        if injector is not None:
            install_default_recovery(machine)
            injector.attach(machine)
        machine.run(machine.image.entry,
                    answer_names=machine.image.query_variable_names)
        return machine, tracer

    def test_macrocode_trace_identical_under_replay(self):
        from repro.recovery import FaultInjector
        plain_machine, plain = self._trace()
        # Page faults surface mid-dispatch — after the tracer has seen
        # the instruction — so the replay is what delivers them again.
        injector = FaultInjector(seed=7, page_faults=3, spurious=1,
                                 horizon=plain_machine.cycles)
        faulted_machine, faulted = self._trace(injector)
        assert faulted_machine.stats.traps_recovered > 0
        assert [r.address for r in faulted.records] \
            == [r.address for r in plain.records]
        assert len(faulted.records) == faulted_machine.stats.instructions
