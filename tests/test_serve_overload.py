"""Overload-hardened serving (ISSUE 6): cooperative deadline
abandonment inside the engines, poison-query quarantine, crash-loop
supervision with degraded-mode fallback, priority-aware shedding, and
the lifecycle hardening of ``close()``.

The acceptance gates: a repeatedly worker-killing query is converted
to a typed ``poisoned`` error while its batchmates return bit-identical
to the fault-free reference; a collapsed worker pool degrades to the
in-process fallback with correct results and ``degraded=True`` in
:class:`~repro.serve.ServiceHealth`."""

import time

import pytest

from repro.serve import (
    POISONED, ChaosPolicy, QuarantineBreaker, QuarantinePolicy,
    QueryService, RetryPolicy, SupervisorPolicy, WorkerSupervisor,
)
from repro.serve.overload import DeadlineAbandoned

FACTS = "colour(red). colour(green). colour(blue)."
LOOP = "loop :- loop."
APPEND = ("append([], L, L). "
          "append([H|T], L, [H|R]) :- append(T, L, R).")
NREV = (APPEND +
        " nrev([], []). "
        "nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R). "
        "mklist(0, []). "
        "mklist(N, [N|T]) :- N > 0, M is N - 1, mklist(M, T). "
        "run(N, R) :- mklist(N, L), nrev(L, R).")

PROGRAMS = {"facts": FACTS, "loop": LOOP, "nrev": NREV}


# -- deadline propagation ----------------------------------------------------

def test_deadline_abandonment_spares_the_worker():
    """A per-query wall budget expiring mid-run is abandoned
    *cooperatively inside the engine*: the worker reports a typed
    WallTimeout and stays alive — no kill, no respawn, warm pool
    intact."""
    with QueryService(PROGRAMS, workers=1) as service:
        assert service.run(("facts", "colour(C)")).ok    # worker is up
        pid = service._processes[0].pid
        result = service.run(("loop", "loop"), timeout_s=0.6)
        health = service.health()
        assert not result.ok
        assert result.error.kind == "WallTimeout"
        assert result.error.transient
        assert result.error.cycles > 0       # the abandonment boundary
        assert health.deadline_abandons == 1
        assert health.timeouts == 1
        assert health.crashes == 0 and health.respawns == 0
        # Same process, still serving.
        assert service._processes[0].pid == pid
        assert service._processes[0].is_alive()
        assert service.run(("facts", "colour(C)")).ok


def test_in_process_deadline_abandonment():
    """The same cooperative stop check works on the workers=0 path —
    the seed service could not time out in-process at all."""
    with QueryService(PROGRAMS, workers=0) as service:
        started = time.monotonic()
        result = service.run(("loop", "loop"), timeout_s=0.4)
        elapsed = time.monotonic() - started
        health = service.health()
    assert result.error.kind == "WallTimeout"
    assert result.error.transient
    assert elapsed < 5.0
    assert health.deadline_abandons == 1 and health.timeouts == 1


def test_batch_deadline_propagates_to_the_worker():
    """A batch deadline tighter than the per-query budget travels into
    the worker and expires as DeadlineExceeded — self-reported, so no
    worker is killed for it."""
    with QueryService(PROGRAMS, workers=1) as service:
        results = service.run_many([("loop", "loop")], deadline_s=0.5)
        health = service.health()
        assert results[0].error.kind == "DeadlineExceeded"
        assert results[0].error.transient
        assert health.crashes == 0, "worker self-reported; no kill needed"
        assert health.deadline_abandons == 1
        assert service._processes[0].is_alive()


def test_deadline_abandoned_exception_shape():
    err = DeadlineAbandoned("WallTimeout", 50_000)
    assert err.kind == "WallTimeout"
    assert err.cycles == 50_000
    assert "50000" in str(err)
    # The kind is not baked into the message: QueryError.__str__
    # prepends it, and "WallTimeout: WallTimeout: ..." would be noise.
    assert "WallTimeout" not in str(err)


# -- poison-query quarantine -------------------------------------------------

def test_quarantine_policy_validation():
    with pytest.raises(ValueError):
        QuarantinePolicy(threshold=0)
    with pytest.raises(ValueError):
        QuarantinePolicy(cooldown_s=-1.0)


def test_breaker_opens_at_threshold_and_ignores_non_strikes():
    breaker = QuarantineBreaker(QuarantinePolicy(threshold=2))
    assert not breaker.record("k", "WorkerCrashed")
    assert not breaker.quarantined("k")
    assert breaker.strikes("k") == 1
    # Permanent machine failures are not strikes: the query is wrong,
    # not poisonous.
    assert not breaker.record("k", "CycleLimitExceeded")
    assert breaker.strikes("k") == 1
    assert breaker.record("k", "WallTimeout")    # strike 2: opens
    assert breaker.quarantined("k")
    assert breaker.open_keys == frozenset({"k"})
    assert not breaker.quarantined("other")
    breaker.reset("k")
    assert not breaker.quarantined("k")
    assert breaker.strikes("k") == 0


def test_breaker_cooldown_half_opens():
    breaker = QuarantineBreaker(
        QuarantinePolicy(threshold=2, cooldown_s=10.0))
    breaker.record("k", "WorkerCrashed", now=0.0)
    breaker.record("k", "WorkerCrashed", now=1.0)
    assert breaker.quarantined("k", now=5.0)
    # Cooldown elapsed: half-open — strikes forgotten, one probe runs.
    assert not breaker.quarantined("k", now=11.0)
    assert breaker.strikes("k") == 0
    # Fresh failures walk back to the threshold and re-open.
    breaker.record("k", "WorkerCrashed", now=12.0)
    assert not breaker.quarantined("k", now=12.0)
    breaker.record("k", "WorkerCrashed", now=13.0)
    assert breaker.quarantined("k", now=14.0)


def test_breaker_half_open_recloses_after_clean_probe():
    """Half-open -> re-close: once the cooldown half-opens the breaker,
    a clean probe (no fresh strike) leaves it closed for good — the
    next failure starts a fresh walk to the threshold rather than
    snapping the breaker back open."""
    breaker = QuarantineBreaker(
        QuarantinePolicy(threshold=3, cooldown_s=10.0))
    for moment in (0.0, 1.0, 2.0):
        breaker.record("k", "WorkerCrashed", now=moment)
    assert breaker.quarantined("k", now=5.0)
    assert not breaker.quarantined("k", now=12.0)     # half-open
    # The probe attempt succeeded: nothing recorded.  Closed state is
    # stable — later checks stay closed and the strike slate is clean.
    assert not breaker.quarantined("k", now=60.0)
    assert breaker.strikes("k") == 0
    assert breaker.open_keys == frozenset()
    # One fresh failure is a first strike again, not a re-open.
    assert not breaker.record("k", "WorkerCrashed", now=61.0)
    assert not breaker.quarantined("k", now=61.0)
    assert breaker.strikes("k") == 1


def test_breaker_half_open_reopens_at_threshold_repeatedly():
    """Half-open -> re-open: after the cooldown, threshold fresh
    strikes re-open the breaker — and the half-open/re-open cycle
    repeats on every later cooldown expiry."""
    breaker = QuarantineBreaker(
        QuarantinePolicy(threshold=2, cooldown_s=10.0))
    breaker.record("k", "WorkerCrashed", now=0.0)
    opened = breaker.record("k", "WallTimeout", now=1.0)
    assert opened and breaker.quarantined("k", now=2.0)
    assert not breaker.quarantined("k", now=11.5)     # half-open #1
    breaker.record("k", "WorkerCrashed", now=12.0)
    assert not breaker.quarantined("k", now=12.0)     # one strike short
    assert breaker.record("k", "WorkerCrashed", now=13.0)
    assert breaker.quarantined("k", now=14.0)         # re-opened
    assert breaker.open_keys == frozenset({"k"})
    assert not breaker.quarantined("k", now=23.5)     # half-open #2
    breaker.record("k", "WorkerCrashed", now=24.0)
    breaker.record("k", "WorkerCrashed", now=25.0)
    assert breaker.quarantined("k", now=25.0)         # re-opened again


def test_poison_query_quarantined_batchmates_bit_identical():
    """The ISSUE 6 acceptance gate: one query that murders every
    worker it touches is struck out after ``threshold`` kills and
    failed with kind="poisoned"; its batchmates complete bit-identical
    to the fault-free reference, and the crash count is bounded by the
    threshold — the poison query cannot starve the batch."""
    batch = [
        ("nrev", "run(20, R)"),              # the poison slot
        ("facts", "colour(C)"),
        ("nrev", "run(10, R)"),
        ("facts", "colour(C)"),
    ]
    with QueryService(PROGRAMS, workers=0) as reference_service:
        reference = reference_service.run_many(batch)
    # kill_slots pins every kill to slot 0; its batchmates run clean.
    chaos = ChaosPolicy(seed=3, kill_rate=1.0, kill_window=(500, 2_000),
                        max_kills_per_slot=10, kill_slots=(0,))
    with QueryService(PROGRAMS, workers=2,
                      quarantine=QuarantinePolicy(threshold=2)) as service:
        results = service.run_many(
            batch, chaos=chaos,
            retry=RetryPolicy(max_attempts=6, base_delay_s=0.01))
        health = service.health()

        assert results[0].error is not None
        assert results[0].error.kind == POISONED
        assert "quarantined" in results[0].error.message
        assert results[0].error.attempts == 2    # struck out, not retried on
        for want, got in zip(reference[1:], results[1:]):
            assert got.ok, got.error
            assert got.solutions == want.solutions
            assert got.stats == want.stats
        assert health.crashes == 2, "strikes bounded by the threshold"
        assert health.retries == 1               # one retry, then struck out
        assert health.quarantines == 1
        assert health.quarantined_keys == 1

        # Resubmitting the poison query is rejected without dispatch.
        again = service.run(("nrev", "run(20, R)"))
        assert again.error.kind == POISONED
        assert again.error.attempts == 0
        assert service.health().quarantines == 2
        assert service.health().crashes == 2     # no worker paid for it


# -- crash-loop supervision --------------------------------------------------

def test_supervisor_policy_backoff_monotone_and_capped():
    policy = SupervisorPolicy(backoff_base_s=0.05, backoff_multiplier=2.0,
                              backoff_max_s=0.4)
    delays = [policy.backoff_s(n) for n in range(1, 10)]
    assert delays[0] == pytest.approx(0.05)
    assert all(a <= b for a, b in zip(delays, delays[1:]))
    assert all(d <= 0.4 for d in delays)
    assert delays[-1] == pytest.approx(0.4)
    with pytest.raises(ValueError):
        SupervisorPolicy(backoff_multiplier=0.5)
    with pytest.raises(ValueError):
        SupervisorPolicy(max_respawns=-1)


def test_worker_supervisor_budget_and_retirement():
    supervisor = WorkerSupervisor(SupervisorPolicy(
        max_respawns=2, backoff_base_s=0.1, backoff_multiplier=2.0,
        backoff_max_s=1.0))
    assert supervisor.on_death(0) == pytest.approx(0.1)
    assert supervisor.on_death(0) == pytest.approx(0.2)
    assert supervisor.on_death(0) is None        # budget spent: retired
    assert supervisor.retired(0)
    assert supervisor.on_death(0) is None        # stays retired
    assert supervisor.respawns(0) == 2
    assert not supervisor.retired(1)             # budgets are per slot
    assert supervisor.on_death(1) == pytest.approx(0.1)
    assert supervisor.retired_count == 1


def test_pool_collapse_degrades_to_local_fallback():
    """The second ISSUE 6 acceptance gate: chaos kills every attempt,
    the supervisor retires the only worker immediately, and the
    service degrades to the in-process fallback — remaining work is
    served correctly and the degraded state is visible in health."""
    batch = [
        ("nrev", "run(20, R)"),
        ("facts", "colour(C)"),
        ("nrev", "run(10, R)"),
    ]
    with QueryService(PROGRAMS, workers=0) as reference_service:
        reference = reference_service.run_many(batch)
    chaos = ChaosPolicy(seed=7, kill_rate=1.0, kill_window=(500, 2_000),
                        max_kills_per_slot=10)
    with QueryService(PROGRAMS, workers=1,
                      supervisor=SupervisorPolicy(max_respawns=0)) as service:
        results = service.run_many(
            batch, chaos=chaos,
            retry=RetryPolicy(max_attempts=4, base_delay_s=0.01))
        health = service.health()
        for want, got in zip(reference, results):
            assert got.ok, got.error
            assert got.solutions == want.solutions
            assert got.stats == want.stats
        assert health.degraded
        assert health.workers_retired == 1
        assert health.workers_alive == 0
        assert health.local_fallbacks == len(batch)
        assert health.crashes == 1               # one death retired the pool
        # Still serving (degraded) after the collapse.
        assert service.run(("facts", "colour(C)")).ok
        assert service.health().degraded


def test_supervised_respawn_backs_off_then_recovers():
    """Within budget, a killed worker is respawned after the
    supervisor's backoff and finishes the batch — no degradation."""
    chaos = ChaosPolicy(seed=3, kill_rate=1.0, kill_window=(500, 2_000),
                        max_kills_per_slot=1)
    with QueryService(PROGRAMS, workers=1,
                      supervisor=SupervisorPolicy(
                          max_respawns=3, backoff_base_s=0.02,
                          backoff_max_s=0.1)) as service:
        results = service.run_many(
            [("nrev", "run(20, R)")], chaos=chaos,
            retry=RetryPolicy(max_attempts=3, base_delay_s=0.01))
        health = service.health()
    assert results[0].ok, results[0].error
    assert health.crashes == 1 and health.respawns == 1
    assert not health.degraded and health.workers_retired == 0


# -- priority-aware shedding -------------------------------------------------

def test_shedding_is_by_priority_and_age_not_fifo():
    """Capacity 2 (one worker + queue depth 1), four slots: the seed
    shed the FIFO tail; now the lowest-priority youngest go, wherever
    they sit in the batch."""
    batch = [("facts", "colour(C)")] * 4
    with QueryService(PROGRAMS, workers=1, max_queue_depth=1) as service:
        results = service.run_many(batch, priorities=[3, 0, 2, 1])
        health = service.health()
    assert results[1].ok                  # priority 0: most important
    assert results[3].ok                  # priority 1
    assert results[2].error.kind == "Shed"
    assert results[0].error.kind == "Shed"
    assert "priority-3" in results[0].error.message
    assert health.sheds == 2
    assert [r.index for r in results] == [0, 1, 2, 3]


def test_priority_ties_shed_youngest_first():
    batch = [("facts", "colour(C)")] * 4
    with QueryService(PROGRAMS, workers=1, max_queue_depth=1) as service:
        results = service.run_many(batch, priorities=[0, 0, 0, 0])
    assert results[0].ok and results[1].ok        # oldest two survive
    assert results[2].error.kind == "Shed"
    assert results[3].error.kind == "Shed"


def test_priorities_length_must_match():
    with QueryService(PROGRAMS, workers=0) as service:
        with pytest.raises(ValueError):
            service.run_many([("facts", "colour(C)")], priorities=[0, 1])


# -- lifecycle hardening -----------------------------------------------------

def test_close_is_idempotent_and_del_safe():
    service = QueryService(PROGRAMS, workers=1)
    assert service.run(("facts", "colour(C)")).ok
    service.close()
    service.close()                       # double close: no-op, no raise
    assert service.health().workers_alive == 0
    service.__del__()                     # del after close: no raise
    # __del__ on a never-finished __init__ (validation raised before
    # _closed was assigned) must also be safe.
    husk = QueryService.__new__(QueryService)
    husk.__del__()
