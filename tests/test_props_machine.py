"""Property-based tests of the full machine: unification laws, sorting
correctness, backtracking state restoration."""

from hypothesis import given, settings, strategies as st

from repro.api import run_query
from repro.prolog.terms import list_to_python
from repro.prolog.writer import term_to_text
from repro.prolog.parser import parse_term

SMALL_INTS = st.integers(min_value=-999, max_value=999)

APPEND = ("append([], L, L).\n"
          "append([H|T], L, [H|R]) :- append(T, L, R).\n")

QSORT = """
qsort([X|L], R, R0) :-
    partition(L, X, L1, L2), qsort(L2, R1, R0),
    qsort(L1, R, [X|R1]).
qsort([], R, R).
partition([X|L], Y, [X|L1], L2) :- X =< Y, !, partition(L, Y, L1, L2).
partition([X|L], Y, L1, [X|L2]) :- partition(L, Y, L1, L2).
partition([], _, [], []).
"""

NREV = APPEND + """
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).
"""


def plist(values):
    return "[" + ",".join(str(v) for v in values) + "]"


def decoded_list(result, name):
    return [t.value for t in list_to_python(result.solutions[0][name])]


class TestListAlgebra:
    @given(st.lists(SMALL_INTS, max_size=12), st.lists(SMALL_INTS,
                                                       max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_append_concatenates(self, xs, ys):
        result = run_query(APPEND, f"append({plist(xs)}, {plist(ys)}, R)")
        assert decoded_list(result, "R") == xs + ys

    @given(st.lists(SMALL_INTS, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_append_splits_every_way(self, xs):
        result = run_query(APPEND, f"append(X, Y, {plist(xs)})",
                           all_solutions=True)
        splits = []
        for s in result.solutions:
            left = [t.value for t in list_to_python(s["X"])]
            right = [t.value for t in list_to_python(s["Y"])]
            splits.append((tuple(left), tuple(right)))
        expected = [(tuple(xs[:i]), tuple(xs[i:]))
                    for i in range(len(xs) + 1)]
        assert splits == expected

    @given(st.lists(SMALL_INTS, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_nrev_is_python_reverse(self, xs):
        result = run_query(NREV, f"nrev({plist(xs)}, R)")
        assert decoded_list(result, "R") == list(reversed(xs))

    @given(st.lists(SMALL_INTS, max_size=8))
    @settings(max_examples=25, deadline=None)
    def test_double_reverse_is_identity(self, xs):
        result = run_query(NREV, f"nrev({plist(xs)}, R1), nrev(R1, R2)")
        assert decoded_list(result, "R2") == xs

    @given(st.lists(SMALL_INTS, max_size=14))
    @settings(max_examples=30, deadline=None)
    def test_qsort_agrees_with_sorted(self, xs):
        result = run_query(QSORT, f"qsort({plist(xs)}, R, [])")
        assert decoded_list(result, "R") == sorted(xs)


class TestUnificationLaws:
    @given(st.lists(SMALL_INTS, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_unification_is_symmetric(self, xs):
        text = plist(xs)
        left = run_query("dummy.", f"X = {text}, X = Y")
        right = run_query("dummy.", f"Y = X, X = {text}")
        assert term_to_text(left.solutions[0]["Y"]) \
            == term_to_text(right.solutions[0]["Y"])

    @given(SMALL_INTS, SMALL_INTS)
    @settings(max_examples=25, deadline=None)
    def test_ground_unification_is_equality(self, a, b):
        result = run_query("dummy.", f"f({a}, {b}) = f({a}, {b})")
        assert result.succeeded
        crossed = run_query("dummy.", f"f({a}) = f({b})")
        assert crossed.succeeded == (a == b)

    @given(st.lists(SMALL_INTS, min_size=1, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_unification_idempotent_after_binding(self, xs):
        text = plist(xs)
        assert run_query("dummy.", f"X = {text}, X = {text}").succeeded


class TestBacktrackingInvariants:
    MEMBER = ("member(X, [X|_]).\n"
              "member(X, [_|T]) :- member(X, T).\n")

    @given(st.lists(SMALL_INTS, min_size=1, max_size=8, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_member_enumerates_in_order(self, xs):
        result = run_query(self.MEMBER, f"member(X, {plist(xs)})",
                           all_solutions=True)
        assert [s["X"].value for s in result.solutions] == xs

    @given(st.lists(SMALL_INTS, min_size=1, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_trail_restores_heap_between_solutions(self, xs):
        # Each solution must decode independently of the bindings the
        # previous alternatives made.
        result = run_query(
            self.MEMBER + APPEND,
            f"append(A, B, {plist(xs)}), member(1, A)",
            all_solutions=True)
        for s in result.solutions:
            a = [t.value for t in list_to_python(s["A"])]
            b = [t.value for t in list_to_python(s["B"])]
            assert a + b == xs
            assert 1 in a

    @given(st.integers(min_value=2, max_value=30))
    @settings(max_examples=15, deadline=None)
    def test_between_full_enumeration(self, n):
        program = """
        between(L, _, L).
        between(L, H, X) :- L < H, L1 is L + 1, between(L1, H, X).
        """
        result = run_query(program, f"between(1, {n}, X)",
                           all_solutions=True)
        assert [s["X"].value for s in result.solutions] \
            == list(range(1, n + 1))


class TestMachineStateInvariants:
    @given(st.lists(SMALL_INTS, max_size=8))
    @settings(max_examples=20, deadline=None)
    def test_stacks_unwind_to_base_on_exhaustion(self, xs):
        result = run_query(TestBacktrackingInvariants.MEMBER,
                           f"member(X, {plist(xs)})", all_solutions=True)
        machine = result.machine
        # After exhausting the search space, B is back at the bottom
        # and the trail is empty.
        assert machine.b == 0
        assert machine.trail.top == machine.trail.base

    @given(st.lists(SMALL_INTS, max_size=6), st.lists(SMALL_INTS,
                                                      max_size=6))
    @settings(max_examples=20, deadline=None)
    def test_cycle_count_is_deterministic(self, xs, ys):
        query = f"append({plist(xs)}, {plist(ys)}, R)"
        first = run_query(APPEND, query)
        second = run_query(APPEND, query)
        assert first.stats.cycles == second.stats.cycles
        assert first.stats.inferences == second.stats.inferences
