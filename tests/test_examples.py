"""Every example script must run cleanly end to end (deliverable b)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run([sys.executable, str(script)],
                            capture_output=True, text=True, timeout=600)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must produce output"


def test_there_are_at_least_five_examples():
    assert len(EXAMPLES) >= 5
