"""Unit tests for the operator-precedence reader."""

import pytest

from repro.errors import PrologSyntaxError
from repro.prolog.parser import parse_program, parse_term
from repro.prolog.terms import Atom, Float, Int, Struct, Var, make_list
from repro.prolog.writer import term_to_text


def canon(text):
    """Parse and render back (precedence-revealing canonical form)."""
    return term_to_text(parse_term(text))


class TestPrimaries:
    def test_constants(self):
        assert parse_term("foo") == Atom("foo")
        assert parse_term("42") == Int(42)
        assert parse_term("3.5") == Float(3.5)
        assert parse_term("[]") == Atom("[]")

    def test_variables(self):
        assert parse_term("X") == Var("X")
        assert parse_term("_Foo") == Var("_Foo")

    def test_anonymous_variables_distinct(self):
        term = parse_term("f(_, _)")
        assert term.args[0] != term.args[1]

    def test_compound(self):
        assert parse_term("f(a, B)") == Struct("f", (Atom("a"), Var("B")))

    def test_nested_compound(self):
        assert parse_term("f(g(h(x)))") == Struct(
            "f", (Struct("g", (Struct("h", (Atom("x"),)),)),))

    def test_atom_space_paren_is_not_call(self):
        # "f (a)" is the operator-free atom f followed by (a) — an error
        # at term level since two terms cannot be juxtaposed.
        with pytest.raises(PrologSyntaxError):
            parse_term("f (a) x")

    def test_curly_braces(self):
        assert parse_term("{}") == Atom("{}")
        assert parse_term("{a}") == Struct("{}", (Atom("a"),))


class TestLists:
    def test_proper_list(self):
        assert parse_term("[1,2,3]") == make_list([Int(1), Int(2), Int(3)])

    def test_partial_list(self):
        term = parse_term("[H|T]")
        assert term == Struct(".", (Var("H"), Var("T")))

    def test_multi_head_tail(self):
        assert canon("[a,b|T]") == "[a, b|_T]"

    def test_nested_lists(self):
        assert canon("[[1],[2,[3]]]") == "[[1], [2, [3]]]"

    def test_strings_become_code_lists(self):
        assert parse_term('"ab"') == make_list([Int(97), Int(98)])


class TestOperators:
    def test_left_associative_minus(self):
        assert parse_term("1-2-3") == Struct(
            "-", (Struct("-", (Int(1), Int(2))), Int(3)))

    def test_right_associative_comma(self):
        term = parse_term("(a, b, c)")
        assert term == Struct(",", (Atom("a"),
                                    Struct(",", (Atom("b"), Atom("c")))))

    def test_precedence_mul_over_add(self):
        assert parse_term("1+2*3") == Struct(
            "+", (Int(1), Struct("*", (Int(2), Int(3)))))

    def test_parentheses_override(self):
        assert parse_term("(1+2)*3") == Struct(
            "*", (Struct("+", (Int(1), Int(2))), Int(3)))

    def test_clause_operator(self):
        term = parse_term("a :- b, c")
        assert term.name == ":-"
        assert term.args[0] == Atom("a")

    def test_prefix_minus(self):
        assert parse_term("-(5)") == Struct("-", (Int(5),))
        assert parse_term("- x") == Struct("-", (Atom("x"),))

    def test_negative_literal(self):
        assert parse_term("-5") == Int(-5)
        assert parse_term("f(-5)") == Struct("f", (Int(-5),))

    def test_negation_operator(self):
        assert parse_term("\\+ a") == Struct("\\+", (Atom("a"),))

    def test_comparison_is_xfx(self):
        with pytest.raises(PrologSyntaxError):
            parse_term("a = b = c")

    def test_if_then_else_shape(self):
        term = parse_term("(a -> b ; c)")
        assert term.name == ";"
        assert term.args[0].name == "->"

    def test_operator_as_atom_in_args(self):
        assert parse_term("f(+, -)") == Struct("f", (Atom("+"), Atom("-")))

    def test_power_right_associative(self):
        assert parse_term("2^3^4") == Struct(
            "^", (Int(2), Struct("^", (Int(3), Int(4)))))

    def test_bar_as_disjunction(self):
        term = parse_term("(a | b)")
        assert term == Struct(";", (Atom("a"), Atom("b")))


class TestPrograms:
    def test_multiple_clauses(self):
        clauses = parse_program("a. b :- c. d(X) :- e(X).")
        assert len(clauses) == 3

    def test_empty_program(self):
        assert parse_program("") == []
        assert parse_program("  % only a comment\n") == []

    def test_missing_dot_raises(self):
        with pytest.raises(PrologSyntaxError):
            parse_program("a :- b")

    def test_error_carries_position(self):
        try:
            parse_term("f(a,")
        except PrologSyntaxError as error:
            assert error.line >= 1
        else:
            pytest.fail("expected a syntax error")

    def test_unbalanced_paren(self):
        with pytest.raises(PrologSyntaxError):
            parse_term("f(a))")


class TestRoundTrips:
    CASES = [
        "f(a, B, [1, 2|T])",
        "a :- b, c ; d",
        "- 1 + 2 * 3 - f(x)",
        "[[], [[]], f([a|b])]",
        "{x, y}",
        "'quoted atom'(1)",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_parse_write_parse_fixpoint(self, text):
        once = parse_term(text)
        again = parse_term(term_to_text(once, quoted=True))
        # Variable names keep their identity up to the _ prefix.
        assert term_to_text(again, quoted=True) \
            == term_to_text(once, quoted=True)
