"""Run-time traps: stack overflow, cycle budget, zone violations
through the full machine path."""

import pytest

from repro.api import compile_and_load, run_query
from repro.core.machine import Machine
from repro.core.symbols import SymbolTable
from repro.core.tags import Zone
from repro.errors import CycleLimitExceeded, StackOverflowTrap
from repro.memory.layout import DEFAULT_LAYOUT, Region
from repro.memory.memory_system import MemorySystem

LOOP = """
loop(N) :- M is N + 1, grow(M, _), loop(M).
grow(N, f(N, N)).
"""

INFINITE = "spin :- spin."


class TestCycleBudget:
    def test_runaway_program_hits_the_budget(self):
        with pytest.raises(CycleLimitExceeded):
            run_query(INFINITE, "spin", max_cycles=10_000)

    def test_budget_not_hit_by_normal_runs(self):
        result = run_query("f(a).", "f(X)", max_cycles=10_000)
        assert result.succeeded


class TestStackOverflow:
    def _tiny_heap_machine(self):
        layout = dict(DEFAULT_LAYOUT)
        layout[Zone.GLOBAL] = Region(Zone.GLOBAL,
                                     DEFAULT_LAYOUT[Zone.GLOBAL].base,
                                     0x4000)
        memory = MemorySystem(layout=layout)
        return Machine(symbols=SymbolTable(), memory=memory)

    def test_heap_exhaustion_traps(self):
        machine = self._tiny_heap_machine()
        machine = compile_and_load(LOOP, "loop(0)", machine=machine)
        with pytest.raises(StackOverflowTrap):
            machine.run(machine.image.entry, answer_names=[])

    def test_trap_names_the_zone(self):
        machine = self._tiny_heap_machine()
        machine = compile_and_load(LOOP, "loop(0)", machine=machine)
        with pytest.raises(StackOverflowTrap, match="GLOBAL"):
            machine.run(machine.image.entry, answer_names=[])

    def test_zone_growth_allows_continuation(self):
        """The runtime's stack-management policy: on overflow, grow the
        zone limits (section 3.2.3: 'The limits of the zones may be
        changed dynamically') and rerun."""
        machine = self._tiny_heap_machine()
        base = DEFAULT_LAYOUT[Zone.GLOBAL].base
        program = """
        build(0, []).
        build(N, [N|T]) :- N > 0, M is N - 1, build(M, T).
        """
        machine = compile_and_load(program, "build(10000, L)",
                                   machine=machine)
        with pytest.raises(StackOverflowTrap):
            machine.run(machine.image.entry, answer_names=["L"])
        machine.memory.zones.set_limits(Zone.GLOBAL, base,
                                        base + 0x100000)
        stats = machine.run(machine.image.entry, answer_names=["L"])
        assert machine.solutions


class TestTrapAuditTrail:
    def test_fatal_trap_is_logged_with_a_report(self):
        """Even an unhandled trap leaves a TrapReport on the machine's
        trap log (the recovery subsystem's audit trail, docs/TRAPS.md)."""
        machine = TestStackOverflow()._tiny_heap_machine()
        machine = compile_and_load(LOOP, "loop(0)", machine=machine)
        with pytest.raises(StackOverflowTrap) as excinfo:
            machine.run(machine.image.entry, answer_names=[])
        assert len(machine.trap_log) == 1
        report = machine.trap_log[0]
        assert report is excinfo.value.report
        assert not report.recovered
        assert report.zone is Zone.GLOBAL
        assert "fatal" in report.describe()

    def test_cycle_limit_message_names_entry_and_addresses(self):
        with pytest.raises(CycleLimitExceeded, match="last .* addresses"):
            run_query(INFINITE, "spin", max_cycles=10_000)


class TestLocalStackDiscipline:
    def test_deep_non_tail_recursion_uses_local_stack(self):
        program = """
        depth(0, 0).
        depth(N, D) :- N > 0, M is N - 1, depth(M, D0), D is D0 + 1.
        """
        result = run_query(program, "depth(300, D)")
        assert result.solutions[0]["D"].value == 300
        machine = result.machine
        # Every frame was popped on the way out: E is back at the
        # bootstrap frame.  (local_top() can still sit high because a
        # live choice point of the final depth(0, _) call protects it.)
        assert machine.e == machine._stack_base[Zone.LOCAL]


class TestTrapLogRing:
    """machine.trap_log is a bounded ring: a long-lived session engine
    servicing thousands of recovered faults must not grow its audit
    log — or its checkpoints — without bound."""

    def _report(self, n):
        from repro.core.traps import TrapReport
        return TrapReport(kind="PageFault", message=f"fault {n}",
                          pc=n, cycles=n * 10, instructions=n,
                          recovered=True)

    def test_ring_caps_and_counts_drops(self):
        from repro.core.traps import TrapLogRing
        ring = TrapLogRing(capacity=4)
        reports = [self._report(n) for n in range(10)]
        for report in reports:
            ring.append(report)
        assert len(ring) == 4
        assert list(ring) == reports[6:]      # newest win, oldest dropped
        assert ring.dropped == 6
        assert ring[0] is reports[6]
        assert bool(ring)
        ring.clear()
        assert len(ring) == 0 and ring.dropped == 0 and not ring

    def test_ring_compares_to_plain_lists_without_drops(self):
        from repro.core.traps import TrapLogRing
        ring = TrapLogRing(capacity=4)
        reports = [self._report(n) for n in range(3)]
        for report in reports:
            ring.append(report)
        assert ring == reports                # no drops: list-equivalent
        ring.append(self._report(3))
        ring.append(self._report(4))          # overflow: one dropped
        assert ring != [self._report(n) for n in range(1, 5)]

    def test_snapshot_restore_roundtrip_and_legacy_list(self):
        from repro.core.traps import TrapLogRing
        ring = TrapLogRing(capacity=3)
        for n in range(7):
            ring.append(self._report(n))
        clone = TrapLogRing.restore(ring.snapshot())
        assert list(clone) == list(ring)
        assert clone.dropped == ring.dropped == 4
        assert clone.capacity == 3
        # Checkpoints written before the ring stored plain lists.
        legacy = TrapLogRing.restore([self._report(0)])
        assert len(legacy) == 1 and legacy.dropped == 0

    def test_checkpoint_round_trips_an_overflowed_ring(self):
        """The regression gate: capture/restore must preserve the ring
        contents AND the dropped count bit-identically, so a resumed
        engine's audit trail matches the uninterrupted one's."""
        from repro.core.traps import MachineCheckpoint, TrapLogRing
        machine = compile_and_load(INFINITE, "spin")
        machine.trap_log = TrapLogRing(capacity=3)
        for n in range(8):
            machine.trap_log.append(self._report(n))
        checkpoint = MachineCheckpoint.capture(machine)
        other = compile_and_load(INFINITE, "spin")
        checkpoint.restore(other)
        assert isinstance(other.trap_log, TrapLogRing)
        assert list(other.trap_log) == list(machine.trap_log)
        assert other.trap_log.dropped == 5
        assert other.trap_log.capacity == 3
