"""Arithmetic semantics: is/2, comparisons, the generic fallback."""

import pytest

from repro.api import run_query
from repro.errors import ArithmeticError_
from tests.conftest import first_binding


def evaluate(expression):
    return first_binding("id(X, X).", f"id(R, R), R is {expression}", "R") \
        if False else first_binding("dummy.", f"R is {expression}", "R")


class TestIntegerArithmetic:
    @pytest.mark.parametrize("expression,expected", [
        ("1 + 2", "3"),
        ("10 - 4", "6"),
        ("6 * 7", "42"),
        ("7 // 2", "3"),
        ("-7 // 2", "-4"),          # floor division
        ("7 mod 3", "1"),
        ("-7 mod 3", "2"),          # floored modulus
        ("2 + 3 * 4", "14"),
        ("(2 + 3) * 4", "20"),
        ("min(3, 5)", "3"),
        ("max(3, 5)", "5"),
        ("abs(-9)", "9"),
        ("5 /\\ 3", "1"),
        ("5 \\/ 3", "7"),
        ("5 xor 3", "6"),
        ("1 << 4", "16"),
        ("32 >> 2", "8"),
        ("- (3 + 4)", "-7"),
    ])
    def test_evaluation(self, expression, expected):
        assert evaluate(expression) == expected

    def test_variables_in_expression(self):
        program = "calc(X, Y, R) :- R is X * Y + X."
        assert first_binding(program, "calc(3, 4, R)", "R") == "15"

    def test_32bit_wraparound(self):
        # The ALU is 32 bits wide: results wrap like hardware.
        program = "big(R) :- R is 2147483647 + 1."
        # Folded at compile time too -- the fold and the ALU must agree.
        result = run_query(program, "big(R)")
        value = result.solutions[0]["R"].value
        assert value == -2147483648 or value == 2147483648

    def test_truncating_slash_on_integers(self):
        # Warren-era '/' on integers truncates.
        assert evaluate("7 / 2") == "3"
        assert evaluate("-7 / 2") == "-3"


class TestFloatArithmetic:
    def test_float_division(self):
        assert evaluate("7.0 / 2") == "3.5"

    def test_mixed_promotes_to_float(self):
        assert evaluate("1 + 0.5") == "1.5"

    def test_single_precision_rounding(self):
        # 0.1 + 0.2 in binary32 differs from the float64 result.
        program = "t(R) :- X is 0.1, Y is 0.2, R is X + Y."
        value = run_query(program, "t(R)").solutions[0]["R"].value
        import struct
        expected = struct.unpack("<f", struct.pack(
            "<f", struct.unpack("<f", struct.pack("<f", 0.1))[0]
            + struct.unpack("<f", struct.pack("<f", 0.2))[0]))[0]
        assert value == pytest.approx(expected, rel=0)


class TestComparisons:
    @pytest.mark.parametrize("goal,holds", [
        ("1 < 2", True), ("2 < 1", False),
        ("2 > 1", True), ("1 > 2", False),
        ("1 =< 1", True), ("2 =< 1", False),
        ("1 >= 1", True), ("0 >= 1", False),
        ("3 =:= 3", True), ("3 =:= 4", False),
        ("3 =\\= 4", True), ("3 =\\= 3", False),
        ("1.5 < 2", True), ("2.5 =:= 2.5", True),
        ("1 + 1 =:= 2", True),
        ("2 * 3 > 5", True),
    ])
    def test_comparison(self, goal, holds):
        assert run_query("dummy.", goal).succeeded == holds


class TestErrors:
    def test_division_by_zero(self):
        with pytest.raises(ArithmeticError_):
            run_query("t(X, R) :- R is 1 // X.", "t(0, R)")

    def test_unbound_in_expression(self):
        with pytest.raises(ArithmeticError_):
            run_query("t(R) :- R is X + 1, X = 2.", "t(R)")

    def test_non_numeric_operand(self):
        with pytest.raises(ArithmeticError_):
            run_query("t(R) :- R is foo + 1.", "t(R)") \
                if False else run_query("t(X, R) :- R is X + 1.",
                                        "t(foo, R)")


class TestGenericEvaluation:
    """is/2 with a run-time expression (through the '$eval_is' escape)."""

    def test_expression_in_variable(self):
        program = "apply(E, R) :- R is E."
        assert first_binding(program, "apply(3 * 4 + 1, R)", "R") == "13"

    def test_nested_runtime_expression(self):
        program = "apply(E, R) :- R is E."
        assert first_binding(program, "apply((1 + 2) * (3 + 4), R)",
                             "R") == "21"

    def test_runtime_float(self):
        program = "apply(E, R) :- R is E."
        assert first_binding(program, "apply(1.5 * 2, R)", "R") == "3.0"

    def test_runtime_error_propagates(self):
        with pytest.raises(ArithmeticError_):
            run_query("apply(E, R) :- R is E.", "apply(1 // 0, R)")

    def test_is_with_bound_result_checks_equality(self):
        assert run_query("dummy.", "4 is 2 + 2").succeeded
        assert not run_query("dummy.", "5 is 2 + 2").succeeded
