"""Unit tests for the data and code caches (paper section 3.2.4)."""

import pytest

from repro.core.tags import Zone
from repro.memory.cache import CodeCache, DataCache
from repro.memory.main_memory import MainMemory


@pytest.fixture
def memory():
    return MainMemory()


@pytest.fixture
def dcache(memory):
    return DataCache(memory, sectioned=True)


@pytest.fixture
def plain(memory):
    return DataCache(memory, sectioned=False)


class TestDataCacheBasics:
    def test_cold_miss_then_hit(self, dcache):
        penalty = dcache.access(0x40000, Zone.GLOBAL, is_write=False)
        assert penalty > 0
        assert dcache.access(0x40000, Zone.GLOBAL, is_write=False) == 0
        assert dcache.stats.misses == 1
        assert dcache.stats.read_hits == 1

    def test_write_allocates(self, dcache):
        dcache.access(0x40010, Zone.GLOBAL, is_write=True)
        assert dcache.access(0x40010, Zone.GLOBAL, is_write=False) == 0

    def test_copy_back_no_write_traffic_on_hits(self, dcache, memory):
        dcache.access(0x40000, Zone.GLOBAL, is_write=True)
        writes_after_miss = memory.writes
        for _ in range(10):
            dcache.access(0x40000, Zone.GLOBAL, is_write=True)
        # A store-in cache writes memory only on eviction, not per write.
        assert memory.writes == writes_after_miss

    def test_dirty_eviction_writes_back(self, dcache, memory):
        address = 0x40000
        dcache.access(address, Zone.GLOBAL, is_write=True)
        # Same section, same index, different tag: evicts the dirty line.
        conflicting = address + DataCache.TOTAL_WORDS
        before = memory.writes
        dcache.access(conflicting, Zone.GLOBAL, is_write=False)
        assert memory.writes == before + 1
        assert dcache.stats.write_backs == 1

    def test_clean_eviction_no_write_back(self, dcache, memory):
        address = 0x40000
        dcache.access(address, Zone.GLOBAL, is_write=False)
        before = memory.writes
        dcache.access(address + DataCache.TOTAL_WORDS, Zone.GLOBAL,
                      is_write=False)
        assert memory.writes == before

    def test_line_size_is_one_word(self, dcache):
        dcache.access(0x40000, Zone.GLOBAL, is_write=False)
        # The neighbour word is NOT brought in (line/block size one).
        assert not dcache.resident(0x40001, Zone.GLOBAL)

    def test_flush_writes_dirty_lines(self, dcache, memory):
        dcache.access(0x40000, Zone.GLOBAL, is_write=True)
        dcache.access(0x40001, Zone.GLOBAL, is_write=True)
        dcache.flush()
        assert memory.writes >= 2
        assert not dcache.resident(0x40000, Zone.GLOBAL)


class TestZoneSectioning:
    def test_different_zones_never_conflict(self, dcache):
        # Same index modulo 1K, different zones: both stay resident.
        dcache.access(0x40000, Zone.GLOBAL, is_write=False)
        dcache.access(0x180000, Zone.LOCAL, is_write=False)
        assert dcache.resident(0x40000, Zone.GLOBAL)
        assert dcache.resident(0x180000, Zone.LOCAL)

    def test_plain_cache_conflicts_across_stacks(self, plain):
        # 0x40000 and 0x180000 are congruent modulo 8K: they fight.
        plain.access(0x40000, Zone.GLOBAL, is_write=False)
        plain.access(0x180000, Zone.LOCAL, is_write=False)
        assert not plain.resident(0x40000, Zone.GLOBAL)

    def test_section_size_is_1k(self, dcache):
        # Within one zone the section behaves as a 1K direct-mapped
        # cache: +1K conflicts.
        dcache.access(0x40000, Zone.GLOBAL, is_write=False)
        dcache.access(0x40000 + 1024, Zone.GLOBAL, is_write=False)
        assert not dcache.resident(0x40000, Zone.GLOBAL)

    def test_total_size_8k_words(self):
        assert DataCache.TOTAL_WORDS == 8 * 1024
        assert DataCache.SECTIONS == 8


class TestCodeCache:
    def test_prefetch_brings_following_words(self, memory):
        cache = CodeCache(memory, prefetch_words=4)
        cache.fetch(100)
        assert cache.fetch(101) == 0
        assert cache.fetch(102) == 0
        assert cache.fetch(103) == 0
        assert cache.fetch(104) > 0        # beyond the burst

    def test_write_through(self, memory):
        cache = CodeCache(memory)
        before = memory.writes
        cache.write(200)
        assert memory.writes == before + 1
        # And the written word is resident (incremental compilation
        # writes directly into the code cache, section 3.2.1).
        assert cache.fetch(200) == 0

    def test_invalidate(self, memory):
        cache = CodeCache(memory)
        cache.fetch(100)
        cache.invalidate()
        assert cache.fetch(100) > 0

    def test_hit_ratio_statistic(self, memory):
        cache = CodeCache(memory)
        cache.fetch(0)
        for _ in range(9):
            cache.fetch(0)
        assert cache.stats.hit_ratio == pytest.approx(0.9)
