"""The predecoded threaded-dispatch layer: block table shape,
invalidation contract, ablation equivalence, watchdog semantics."""

import pytest

from repro.api import compile_and_load, run_query
from repro.compiler.incremental import IncrementalLoader
from repro.core.machine import Machine
from repro.core.predecode import BLOCK_ENDERS, predecode
from repro.core.symbols import SymbolTable
from repro.errors import CycleLimitExceeded, InstructionError
from repro.prolog.writer import term_to_text

APPEND = ("append([], L, L).\n"
          "append([H|T], L, [H|R]) :- append(T, L, R).\n")
QUERY = "append([1,2,3], [4,5], R)"


def loaded_machine(fast_path=True):
    return compile_and_load(APPEND, QUERY,
                            machine=Machine(symbols=SymbolTable(),
                                            fast_path=fast_path))


class TestBlockTable:
    def test_entries_cover_instruction_starts_only(self):
        machine = loaded_machine()
        table = machine._ensure_predecoded()
        assert table.valid_for(machine.code)
        pc = 0
        while pc < len(machine.code):
            instr = machine.code[pc]
            assert instr is not None
            assert table.entries[pc] is not None
            for middle in range(pc + 1, pc + instr.size):
                assert machine.code[middle] is None
                assert table.entries[middle] is None
            pc += instr.size

    def test_block_sums_match_member_steps(self):
        # Structural invariants are asserted on an unfused translation
        # (no fuser): fused entries carry an empty steps tuple by
        # design and are covered by test_superops.py.
        machine = loaded_machine()
        table = predecode(machine.code, machine._dispatch,
                          machine.costs.static_cost_table())
        costs = machine.costs.static_cost_table()
        for entry in table.entries:
            if entry is None:
                continue
            steps, cycle_sum, instr_count, infer_count, fused = entry
            assert fused is None, "no fuser was supplied"
            assert instr_count == len(steps)
            assert cycle_sum == sum(step[1] for step in steps)
            assert infer_count == sum(step[2] for step in steps)
            for handler, cost, infer, next_p, instr in steps:
                assert handler is machine._dispatch[instr.op]
                assert cost == costs[instr.op]
                assert infer == (1 if instr.infer else 0)
            for step in steps[:-1]:
                # Only the last step of a block may transfer control.
                assert step[4].op not in BLOCK_ENDERS

    def test_blocks_end_at_enders_or_boundaries(self):
        machine = loaded_machine()
        table = predecode(machine.code, machine._dispatch,
                          machine.costs.static_cost_table())
        for entry in table.entries:
            if entry is None:
                continue
            last = entry[0][-1]
            next_p = last[3]
            assert (last[4].op in BLOCK_ENDERS
                    or next_p >= len(machine.code)
                    or table.entries[next_p] is not None)

    def test_singles_mirror_per_address_steps(self):
        # The recovering loop executes one instruction at a time from
        # .singles; every instruction start must have its plain step
        # there even when the block entry itself is fused.
        machine = loaded_machine()
        table = machine._ensure_predecoded()
        for pc, instr in enumerate(machine.code):
            if instr is None:
                assert table.singles[pc] is None
            else:
                handler, cost, infer, next_p, step_instr = \
                    table.singles[pc]
                assert step_instr is instr
                assert next_p == pc + instr.size
                assert handler is machine._dispatch[instr.op]

    def test_static_cost_table_matches_dynamic_costs(self):
        machine = loaded_machine()
        table = machine.costs.static_cost_table()
        for op, cost in table.items():
            assert cost == machine.costs.instruction_cost(op)


class TestInvalidation:
    def test_incremental_load_invalidates(self):
        machine = loaded_machine()
        machine.run(machine.image.entry,
                    answer_names=machine.image.query_variable_names)
        stale = machine._predecoded
        assert stale is not None

        loader = IncrementalLoader(machine)
        loader.add_program("color(red).\ncolor(green).\n")
        assert machine._predecoded is None, \
            "incremental install must drop the predecode table"
        entry, names = loader.query("color(C)")
        machine.run(entry, collect_all=True, answer_names=names)
        rebuilt = machine._predecoded
        assert rebuilt is not None and rebuilt is not stale
        assert rebuilt.valid_for(machine.code)
        values = sorted(term_to_text(s["C"]) for s in machine.solutions)
        assert values == ["green", "red"]

    def test_stale_table_rebuilt_defensively(self):
        # Even without an invalidate() call, a table built for a
        # different code length is never used.
        machine = loaded_machine()
        machine.run(machine.image.entry,
                    answer_names=machine.image.query_variable_names)
        table = machine._predecoded
        machine.code.append(None)   # simulate an unannounced writer
        assert not table.valid_for(machine.code)
        assert machine._ensure_predecoded() is not table

    def test_predecode_standalone_rejects_nothing(self):
        machine = loaded_machine()
        table = predecode(machine.code, machine._dispatch,
                          machine.costs.static_cost_table())
        assert table.code_len == len(machine.code)


class TestExecutionSemantics:
    def test_fast_and_ablation_agree(self):
        keys = []
        for fast_path in (True, False):
            machine = loaded_machine(fast_path=fast_path)
            stats = machine.run(
                machine.image.entry,
                answer_names=machine.image.query_variable_names)
            keys.append((stats.cycles, stats.instructions,
                         stats.inferences, stats.data_reads,
                         stats.data_writes, str(machine.solutions)))
        assert keys[0] == keys[1]

    def test_jump_into_middle_of_instruction_raises(self):
        machine = loaded_machine()
        multi = next(pc for pc, instr in enumerate(machine.code)
                     if instr is not None and instr.size > 1)
        with pytest.raises(InstructionError,
                           match="middle of a multi-word"):
            machine.run(multi + 1)

    def test_cycle_limit_stops_at_instruction_boundary(self):
        machine = loaded_machine()
        machine.max_cycles = 60
        with pytest.raises(CycleLimitExceeded) as excinfo:
            machine.run(machine.image.entry,
                        answer_names=machine.image.query_variable_names)
        err = excinfo.value
        assert err.recent_addresses, "watchdog lost the address ring"
        assert machine.cycles > 60
        # State is intact at an instruction boundary: the run can be
        # resumed with a bigger budget and completes normally.
        stats = machine.resume(extra_cycles=1_000_000)
        assert stats.solutions == 1
        reference = run_query(APPEND, QUERY)
        assert stats.cycles == reference.stats.cycles

    def test_ablation_flag_selects_seed_loop(self):
        machine = loaded_machine(fast_path=False)
        machine.run(machine.image.entry,
                    answer_names=machine.image.query_variable_names)
        assert machine._predecoded is None, \
            "the ablation must never build a predecode table"
