"""Tests for shallow backtracking (paper section 3.1.5).

The headline mechanism: entering a clause with alternatives saves only
three state registers into shadow registers; the choice point is
created at the neck, and head/guard failures restore the shadow
registers only.
"""

import pytest

from repro.api import run_query
from repro.core.costs import Features
from repro.core.machine import Machine
from repro.core.symbols import SymbolTable


MAX_PROGRAM = "max(X, Y, X) :- X >= Y.\nmax(X, Y, Y) :- X < Y.\n"


def run(program, query, **features):
    symbols = SymbolTable()
    machine = Machine(symbols=symbols,
                      features=Features(**features)) if features else None
    return run_query(program, query, machine=machine)


class TestShallowPath:
    def test_guard_failure_is_shallow(self):
        result = run(MAX_PROGRAM, "max(1, 2, M)")
        assert result.bindings_text() == "M = 2"
        assert result.stats.shallow_fails == 1
        assert result.stats.deep_fails == 0

    def test_no_choice_point_for_guard_selection(self):
        result = run(MAX_PROGRAM, "max(1, 2, M)")
        assert result.stats.choice_points_created == 0

    def test_first_clause_success_creates_choice_point(self):
        # max(2,1,M): clause 1 succeeds at its neck with clause 2 still
        # untried -> a real choice point must exist (clause 2 could
        # match on backtracking in general).
        result = run(MAX_PROGRAM, "max(2, 1, M)")
        assert result.bindings_text() == "M = 2"
        assert result.stats.choice_points_created == 1

    def test_head_failure_is_shallow(self):
        program = "f(a, 1). f(b, 2). f(c, 3)."
        # Head mismatch walks the chain via shadow restores only; but
        # note first-argument indexing dispatches c directly, so force
        # the var chain with an unbound first argument plus a guard.
        program2 = """
        g(X, R) :- X =:= 1, R = one.
        g(X, R) :- X =:= 2, R = two.
        g(X, R) :- X =:= 3, R = three.
        """
        result = run(program2, "g(3, R)")
        assert result.bindings_text() == "R = three"
        assert result.stats.shallow_fails == 2
        assert result.stats.choice_points_created == 0

    def test_neck_cut_discards_shadow_for_free(self):
        program = """
        h(X, R) :- X >= 10, !, R = big.
        h(_, small).
        """
        result = run(program, "h(42, R)")
        assert result.bindings_text() == "R = big"
        assert result.stats.choice_points_created == 0
        assert result.stats.choice_points_avoided >= 1

    def test_shallow_restores_heap_and_trail(self):
        # The failing head binds structure args before failing; the
        # shadow restore must unwind them.
        program = """
        p(f(1, 2), one_two).
        p(f(X, Y), other(X, Y)).
        """
        result = run(program, "p(f(9, 8), R)")
        assert result.bindings_text() == "R = other(9, 8)"


class TestAgainstEagerBaseline:
    """The same programs with shallow backtracking disabled must give
    identical answers but create more choice points and spend more
    cycles."""

    PROGRAMS = [
        (MAX_PROGRAM, "max(1, 2, M)"),
        ("f(1, a). f(2, b). f(3, c).", "f(3, X)"),
        ("p(X) :- X > 2. p(X) :- X =< 2.", "p(1)"),
    ]

    @pytest.mark.parametrize("program,query", PROGRAMS)
    def test_same_answers(self, program, query):
        fast = run(program, query)
        slow = run(program, query, shallow_backtracking=False)
        assert [sorted(s.items()) for s in fast.solutions] \
            == [sorted(s.items()) for s in slow.solutions]

    @pytest.mark.parametrize("program,query", PROGRAMS)
    def test_eager_never_cheaper(self, program, query):
        fast = run(program, query)
        slow = run(program, query, shallow_backtracking=False)
        assert slow.stats.cycles >= fast.stats.cycles
        assert slow.stats.choice_points_created \
            >= fast.stats.choice_points_created

    def test_choice_point_traffic_reduction(self):
        # Guard-selected clauses: shallow backtracking never
        # materialises a choice point, the eager WAM builds one per
        # entered clause ("about 50% of all memory references" went to
        # CP save/restore in the standard WAM, section 3.1.5).
        program = """
        digit(X, R) :- X =:= 0, R = zero.
        digit(X, R) :- X =:= 1, R = one.
        digit(X, R) :- X =:= 2, R = two.
        digit(X, R) :- X =:= 3, R = three.
        run(A, B, C, D) :- digit(3, A), digit(2, B), digit(1, C),
                           digit(0, D).
        """
        fast = run(program, "run(A, B, C, D)")
        slow = run(program, "run(A, B, C, D)",
                   shallow_backtracking=False)
        assert fast.solutions == slow.solutions
        # digit(3,_) commits in its *last* clause: no choice point at
        # all on the shallow machine; the eager machine built one.  The
        # other three calls succeed with alternatives remaining, so
        # both machines keep a CP for them (paper: the CP is created at
        # "the neck of some of its alternatives").
        assert fast.stats.choice_points_created == 3
        assert slow.stats.choice_points_created == 4
        assert fast.stats.shallow_fails == 6
        assert slow.stats.shallow_fails == 0
        assert slow.stats.cycles > fast.stats.cycles

    def test_shadow_registers_mirrored_in_register_file(self):
        result = run(MAX_PROGRAM, "max(1, 2, M)")
        machine = result.machine
        alt, h, tr = machine.regs.shadow()
        assert alt.value == machine.shadow.alt
        assert h.value == machine.shadow.h
        assert tr.value == machine.shadow.tr


class TestDeepBacktracking:
    def test_body_failure_is_deep(self):
        program = """
        q(X) :- member(X, [1,2,3]), X > 2.
        member(X, [X|_]).
        member(X, [_|T]) :- member(X, T).
        """
        result = run(program, "q(X)")
        assert result.bindings_text() == "X = 3"
        assert result.stats.deep_fails >= 1

    def test_deep_fail_restores_argument_registers(self):
        # After a deep fail, the retried clause sees the original args.
        program = """
        pick(L, X) :- member(X, L), X =:= 99.
        pick(L, first(L)).
        member(X, [X|_]).
        member(X, [_|T]) :- member(X, T).
        """
        result = run(program, "pick([1,2,3], R)")
        assert result.bindings_text() == "R = first([1, 2, 3])"

    def test_alternation_shallow_then_deep(self):
        result = run(MAX_PROGRAM + "t(M) :- max(1, 2, M), M > 5.\n"
                     "t(none).", "t(R)")
        assert result.bindings_text() == "R = none"
