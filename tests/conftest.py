"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.api import run_query
from repro.prolog.parser import parse_term
from repro.prolog.writer import term_to_text


def solve(program: str, query: str, **kwargs):
    """Run a query; returns the QueryResult."""
    return run_query(program, query, **kwargs)


def first_binding(program: str, query: str, name: str, **kwargs) -> str:
    """Text of variable ``name`` in the first solution."""
    result = run_query(program, query, **kwargs)
    assert result.solutions, f"no solution for {query}"
    return term_to_text(result.solutions[0][name])


def all_bindings(program: str, query: str, name: str, **kwargs):
    """Texts of variable ``name`` across all solutions."""
    result = run_query(program, query, all_solutions=True, **kwargs)
    return [term_to_text(s[name]) for s in result.solutions]


@pytest.fixture
def append_program() -> str:
    """The canonical two-clause append."""
    return ("append([], L, L).\n"
            "append([H|T], L, [H|R]) :- append(T, L, R).\n")


@pytest.fixture
def member_program() -> str:
    """The canonical member/2."""
    return ("member(X, [X|_]).\n"
            "member(X, [_|T]) :- member(X, T).\n")


def term(text: str):
    """Parse one term (test shorthand)."""
    return parse_term(text)
