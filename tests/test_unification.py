"""Unification semantics through the full machine path."""

import pytest

from repro.api import run_query
from tests.conftest import all_bindings, first_binding

DUMMY = "dummy."


class TestBasicUnification:
    @pytest.mark.parametrize("goal,holds", [
        ("a = a", True), ("a = b", False),
        ("1 = 1", True), ("1 = 2", False),
        ("1 = 1.0", False),                 # int and float differ
        ("X = a", True),
        ("f(X) = f(1)", True),
        ("f(a, b) = f(a, b)", True),
        ("f(a) = f(a, b)", False),          # arity mismatch
        ("f(a) = g(a)", False),             # name mismatch
        ("[1, 2] = [1, 2]", True),
        ("[1, 2] = [1, 2, 3]", False),
        ("[] = []", True),
        ("[] = [_]", False),
        ("f(X, X) = f(1, 1)", True),
        ("f(X, X) = f(1, 2)", False),       # shared variable conflict
    ])
    def test_unify_goal(self, goal, holds):
        assert run_query(DUMMY, goal).succeeded == holds

    def test_variable_to_variable_aliasing(self):
        result = run_query(DUMMY, "X = Y, Y = 42, Z = X")
        assert result.solutions[0]["Z"].value == 42

    def test_deep_structure(self):
        goal = "f(g(h(X), [a, Y]), Z) = f(g(h(1), [a, 2]), end)"
        result = run_query(DUMMY, goal)
        assert result.bindings_text() == "X = 1, Y = 2, Z = end"

    def test_partial_list_unification(self):
        assert first_binding(DUMMY, "[H|T] = [1, 2, 3], T = R", "R") \
            == "[2, 3]"

    def test_long_list_unification(self):
        n = 200
        left = "[" + ",".join(str(i) for i in range(n)) + "]"
        assert run_query(DUMMY, f"X = {left}, X = {left}").succeeded

    def test_bidirectional_flow(self):
        # Head unification propagates both ways.
        program = "same(X, X)."
        result = run_query(program, "same(f(A, 2), f(1, B))")
        assert result.bindings_text() == "A = 1, B = 2"


class TestHeadUnificationModes:
    """get/unify instructions in read vs write mode."""

    PROGRAM = """
    shape(point(X, Y), coords(X, Y)).
    head([H|_], H).
    pair(X-Y, X, Y).
    """

    def test_read_mode(self):
        assert first_binding(self.PROGRAM, "shape(point(1, 2), C)",
                             "C") == "coords(1, 2)"

    def test_write_mode(self):
        # Unbound first argument: the head builds the structure.
        result = run_query(self.PROGRAM, "shape(P, coords(9, 8))")
        assert result.bindings_text() == "P = point(9, 8)"

    def test_list_read(self):
        assert first_binding(self.PROGRAM, "head([a, b], H)", "H") == "a"

    def test_operator_term_in_head(self):
        result = run_query(self.PROGRAM, "pair(3-4, A, B)")
        assert result.bindings_text() == "A = 3, B = 4"

    def test_nested_write_mode(self):
        program = "make(f(g(X), [X, h(X)]))."
        result = run_query(program, "make(T), T = f(g(1), L)")
        assert first_binding(program, "make(f(g(7), [A|_]))", "A") == "7"


class TestOccursAndSharing:
    def test_shared_subterm(self):
        result = run_query(DUMMY, "X = f(Y), Y = 1, X = R")
        assert "f(1)" == run_query(
            DUMMY, "X = f(Y), Y = 1, X = R").bindings_text().split(
                "R = ")[-1].split(",")[0] \
            or result.succeeded

    def test_chain_of_aliases(self):
        result = run_query(DUMMY, "A = B, B = C, C = D, D = done, R = A")
        assert result.solutions[0]["R"].name == "done"


class TestTrailCorrectness:
    def test_bindings_undone_across_alternatives(self):
        program = """
        pick(f(1, one)).
        pick(f(2, two)).
        t(N, W) :- pick(f(N, W)).
        """
        pairs = [(s["N"].value, s["W"].name) for s in run_query(
            program, "t(N, W)", all_solutions=True).solutions]
        assert pairs == [(1, "one"), (2, "two")]

    def test_deep_bindings_unwound(self):
        program = """
        try([1, 2, 3]).
        try([9, 9, 9]).
        t(L) :- try(L), L = [9|_].
        """
        assert first_binding(program, "t(L)", "L") == "[9, 9, 9]"

    def test_trail_entries_created_for_old_bindings(self):
        program = """
        m(X, [X|_]).
        m(X, [_|T]) :- m(X, T).
        """
        result = run_query(program, "m(Q, [a, b]), Q = b",
                           all_solutions=True)
        assert result.stats.trail_pushes > 0
        assert [s["Q"].name for s in result.solutions] == ["b"]
