"""Resilient serving (ISSUE 5): worker death mid-batch, retry with
deterministic backoff, resume-from-checkpoint after a crash, admission
control, batch deadlines, health counters, and the end-to-end chaos
invariant over the PLM corpus — a chaos-ridden batch returns solutions
and statuses bit-identical to the fault-free reference with no slot
lost or duplicated."""

import threading
import time

from repro.bench.programs import SUITE
from repro.serve import (
    ChaosPolicy, QueryService, RetryPolicy, ServiceHealth,
    verify_chaos_invariant,
)

FACTS = "colour(red). colour(green). colour(blue)."
LOOP = "loop :- loop."
APPEND = ("append([], L, L). "
          "append([H|T], L, [H|R]) :- append(T, L, R).")
NREV = (APPEND +
        " nrev([], []). "
        "nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R). "
        "mklist(0, []). "
        "mklist(N, [N|T]) :- N > 0, M is N - 1, mklist(M, T). "
        "run(N, R) :- mklist(N, L), nrev(L, R).")

PROGRAMS = {"facts": FACTS, "loop": LOOP, "nrev": NREV}

#: short-to-medium PLM suite programs (the long ones add minutes of
#: wall time without new coverage).
CORPUS = ["con1", "nrev1", "qs4", "times10", "divide10", "log10", "ops8"]


# -- worker death ------------------------------------------------------------

def test_mid_batch_worker_death_fails_one_slot_only():
    """Kill the worker while it serves slot 0; without a retry policy
    the slot fails WorkerCrashed, the respawned worker completes the
    rest of the batch, and input order is preserved."""
    with QueryService(PROGRAMS, workers=1) as service:
        assert service.run(("facts", "colour(C)")).ok    # worker is up

        def assassin():
            time.sleep(0.5)          # the loop query is now inflight
            service._processes[0].terminate()

        killer = threading.Thread(target=assassin, daemon=True)
        killer.start()
        results = service.run_many([
            ("loop", "loop"),        # no cycle budget: runs until killed
            ("facts", "colour(C)"),
            ("nrev", "run(10, R)"),
        ])
        killer.join()
        health = service.health()
    assert [r.index for r in results] == [0, 1, 2]
    assert not results[0].ok
    assert results[0].error.kind == "WorkerCrashed"
    assert results[0].error.transient
    assert results[1].ok and results[2].ok
    assert health.crashes == 1 and health.respawns == 1
    assert health.retries == 0        # no policy: the failure is final


def test_retry_policy_recovers_killed_slots():
    """With a retry policy, a chaos kill on every slot's first attempt
    is invisible in the results: attempt 2 runs clean and matches the
    fault-free reference bit for bit."""
    batch = [("nrev", "run(20, R)"), ("nrev", "run(15, R)")]
    with QueryService(PROGRAMS, workers=0) as reference:
        expected = reference.run_many(batch)
    chaos = ChaosPolicy(seed=3, kill_rate=1.0, kill_window=(500, 2_000),
                        max_kills_per_slot=1)
    with QueryService(PROGRAMS, workers=2) as service:
        results = service.run_many(
            batch, chaos=chaos,
            retry=RetryPolicy(max_attempts=3, base_delay_s=0.01))
        health = service.health()
    for want, got in zip(expected, results):
        assert got.ok
        assert got.solutions == want.solutions
        assert got.stats == want.stats
    assert health.crashes == len(batch)
    assert health.retries == len(batch)
    assert health.completed >= len(batch)


def test_crashed_slot_resumes_from_checkpoint():
    """With checkpointing on, the retry after a kill resumes from the
    last shipped checkpoint instead of starting over — and still
    produces the uninterrupted run's exact solutions and RunStats."""
    batch = [("nrev", "run(30, R)")]
    with QueryService(PROGRAMS, workers=0) as reference:
        expected = reference.run_many(batch)[0]
    assert expected.stats.cycles > 10_000    # room for several slices
    chaos = ChaosPolicy(seed=5, kill_rate=1.0,
                        kill_window=(8_000, 12_000), max_kills_per_slot=1)
    with QueryService(PROGRAMS, workers=1, checkpoint_every=2_000) as service:
        result = service.run_many(
            batch, chaos=chaos,
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.01))[0]
        health = service.health()
    assert result.ok
    assert result.solutions == expected.solutions
    assert result.stats == expected.stats
    assert health.crashes == 1
    assert health.resumes == 1, "the retry must resume, not restart"
    assert health.checkpoints_received >= 4


# -- retry backoff -----------------------------------------------------------

def test_retry_delay_monotone_in_attempt():
    """The delay sequence for any slot never decreases with the
    attempt number — including across the cap boundary, where the seed
    policy's pre-jitter cap could order attempt 5 before attempt 4."""
    for seed in range(5):
        policy = RetryPolicy(base_delay_s=0.05, multiplier=2.0,
                             max_delay_s=0.4, jitter=0.25, seed=seed)
        for index in range(8):
            delays = [policy.delay_s(index, attempt)
                      for attempt in range(1, 12)]
            assert all(a <= b for a, b in zip(delays, delays[1:])), \
                f"non-monotone for seed {seed} slot {index}: {delays}"


def test_retry_delay_capped_at_max():
    policy = RetryPolicy(base_delay_s=0.05, multiplier=2.0,
                         max_delay_s=0.4, jitter=0.25)
    assert all(policy.delay_s(index, attempt) <= 0.4
               for index in range(8) for attempt in range(1, 20))
    assert policy.delay_s(0, 15) == 0.4      # deep attempts pin the cap


def test_retry_delay_deterministic_for_fixed_seed():
    first = RetryPolicy(seed=42)
    second = RetryPolicy(seed=42)
    other = RetryPolicy(seed=43)
    grid = [(index, attempt)
            for index in range(6) for attempt in range(1, 6)]
    assert ([first.delay_s(i, a) for i, a in grid]
            == [second.delay_s(i, a) for i, a in grid])
    assert ([first.delay_s(i, a) for i, a in grid]
            != [other.delay_s(i, a) for i, a in grid])


# -- admission control and deadlines -----------------------------------------

def test_admission_control_sheds_beyond_capacity():
    batch = [("facts", "colour(C)")] * 5
    with QueryService(PROGRAMS, workers=1, max_queue_depth=1) as service:
        results = service.run_many(batch)
        health = service.health()
    admitted = [r for r in results if r.ok]
    shed = [r for r in results if not r.ok]
    assert len(admitted) == 2                # workers + max_queue_depth
    assert len(shed) == 3
    for result in shed:
        assert result.error.kind == "Shed"
        assert result.error.transient        # resubmitting later is fine
        assert result.error.attempts == 0    # never dispatched
    assert health.sheds == 3
    assert [r.index for r in results] == list(range(5))


def test_batch_deadline_bounds_the_whole_batch():
    with QueryService(PROGRAMS, workers=1) as service:
        started = time.monotonic()
        results = service.run_many([
            ("loop", "loop"),                # would run forever
            ("facts", "colour(C)"),          # starves behind it
        ], deadline_s=1.0)
        elapsed = time.monotonic() - started
    assert elapsed < 10.0                    # bounded, not poll-forever
    assert results[0].error.kind == "DeadlineExceeded"
    assert results[0].error.transient
    assert results[1].error.kind == "DeadlineExceeded"
    assert results[1].error.attempts == 0    # never dispatched
    # The pool survives a batch expiry.
    with QueryService(PROGRAMS, workers=1) as service:
        assert service.run(("facts", "colour(C)")).ok


def test_health_snapshot_shape():
    with QueryService(PROGRAMS, workers=2) as service:
        assert service.run(("facts", "colour(C)")).ok
        health = service.health()
        assert isinstance(health, ServiceHealth)
        assert health.workers == 2
        assert health.workers_alive == 2
        assert health.completed == 1
        assert health.queue_depth == 0 and health.inflight == 0
        # Both workers heralded at startup; ages are fresh.
        assert set(health.heartbeat_age_s) <= {0, 1}
        assert all(age >= 0.0 for age in health.heartbeat_age_s.values())


def _counter_fields(health: ServiceHealth) -> dict:
    return {name: getattr(health, name)
            for name in ("respawns", "retries", "resumes", "sheds",
                         "timeouts", "crashes", "completed", "failed",
                         "checkpoints_received", "quarantines",
                         "deadline_abandons", "local_fallbacks",
                         "workers_retired", "migrations",
                         "leases_expired")}


def test_session_counters_monotonic_across_session_traffic():
    """The session-layer lifetime counters (migrations,
    leases_expired) obey the same monotonicity contract as the
    service's own, across mixed session traffic including forced
    lease expiries."""
    from repro.serve import LeasePolicy, SessionService
    clock = [0.0]
    with SessionService(PROGRAMS, workers=0,
                        lease=LeasePolicy(ttl_s=30.0),
                        clock=lambda: clock[0]) as service:
        snapshots = [_counter_fields(service.health())]
        first = service.open("facts", "colour(C)")
        service.next_solution(first)
        snapshots.append(_counter_fields(service.health()))
        second = service.open("facts", "colour(C)")
        service.expire_lease(second)
        service.reap()
        snapshots.append(_counter_fields(service.health()))
        service.expire_lease(first)
        service.reap()
        snapshots.append(_counter_fields(service.health()))
    for before, after in zip(snapshots, snapshots[1:]):
        for name, value in before.items():
            assert after[name] >= value, \
                f"counter {name} went backwards: {value} -> {after[name]}"
    assert snapshots[-1]["leases_expired"] == 2


def test_health_counters_are_monotonic_across_batches():
    """Every ServiceHealth lifetime counter only ever advances — a
    snapshot taken after more work dominates one taken before, field
    by field, and the events of each phase land in their counters."""
    chaos = ChaosPolicy(seed=3, kill_rate=1.0, kill_window=(500, 2_000),
                        max_kills_per_slot=1)
    with QueryService(PROGRAMS, workers=1, max_queue_depth=1) as service:
        snapshots = [_counter_fields(service.health())]
        assert service.run(("facts", "colour(C)")).ok
        snapshots.append(_counter_fields(service.health()))
        service.run_many([("facts", "colour(C)")] * 4)     # sheds 2
        snapshots.append(_counter_fields(service.health()))
        service.run(("loop", "loop"), timeout_s=0.4)       # abandons
        snapshots.append(_counter_fields(service.health()))
        service.run_many([("nrev", "run(20, R)")], chaos=chaos,
                         retry=RetryPolicy(max_attempts=3,
                                           base_delay_s=0.01))
        snapshots.append(_counter_fields(service.health()))
    for before, after in zip(snapshots, snapshots[1:]):
        for name, value in before.items():
            assert after[name] >= value, \
                f"counter {name} went backwards: {value} -> {after[name]}"
    final = snapshots[-1]
    assert final["completed"] >= 4
    assert final["sheds"] == 2
    assert final["timeouts"] == 1 and final["deadline_abandons"] == 1
    assert final["crashes"] == 1 and final["retries"] == 1
    assert final["respawns"] == 1


# -- the chaos invariant over the PLM corpus ---------------------------------

def test_chaos_invariant_over_plm_corpus():
    """The ISSUE 5 acceptance gate: seeded kills, delivery delays and
    injected machine faults change nothing observable — solutions and
    statuses bit-identical to the fault-free reference, every slot
    answered exactly once, and stats identical wherever no faults were
    injected into the simulation itself."""
    programs = {name: SUITE[name].source_pure for name in CORPUS}
    batch = [(name, SUITE[name].query_pure) for name in CORPUS]
    chaos = ChaosPolicy(seed=2026, kill_rate=0.6, kill_window=(400, 6_000),
                        max_kills_per_slot=1,
                        delay_rate=0.5, max_delay_s=0.02,
                        inject_rate=0.4, inject_horizon=6_000)
    report = verify_chaos_invariant(programs, batch, chaos,
                                    workers=2, checkpoint_every=1_500)
    assert report["ok"], report["mismatches"]
    assert report["slots"] == len(CORPUS)
    health = report["health"]
    assert health.crashes > 0, "the seed must actually kill workers"
    assert health.completed == len(CORPUS)
