"""Property-based tests of the memory-hierarchy models."""

from hypothesis import given, settings, strategies as st

from repro.core.tags import Zone
from repro.core.word import make_int
from repro.memory.cache import CodeCache, DataCache
from repro.memory.main_memory import MainMemory
from repro.memory.mmu import MMU
from repro.memory.store import DataStore

STACK_ZONES = [Zone.GLOBAL, Zone.LOCAL, Zone.CONTROL, Zone.TRAIL]

# Access sequences over a small address window per zone.
accesses = st.lists(
    st.tuples(st.sampled_from(STACK_ZONES),
              st.integers(min_value=0, max_value=5000),
              st.booleans()),
    max_size=200)

ZONE_BASE = {Zone.GLOBAL: 0x40000, Zone.LOCAL: 0x180000,
             Zone.CONTROL: 0x240000, Zone.TRAIL: 0x300000}


class TestDataCacheProperties:
    @given(accesses)
    @settings(max_examples=60, deadline=None)
    def test_counters_are_consistent(self, sequence):
        cache = DataCache(MainMemory())
        for zone, offset, is_write in sequence:
            cache.access(ZONE_BASE[zone] + offset, zone, is_write)
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses
        assert 0.0 <= stats.hit_ratio <= 1.0
        assert stats.write_backs <= stats.misses

    @given(accesses)
    @settings(max_examples=60, deadline=None)
    def test_access_makes_resident(self, sequence):
        cache = DataCache(MainMemory())
        for zone, offset, is_write in sequence:
            address = ZONE_BASE[zone] + offset
            cache.access(address, zone, is_write)
            assert cache.resident(address, zone)

    @given(accesses)
    @settings(max_examples=40, deadline=None)
    def test_repeat_of_last_access_always_hits(self, sequence):
        cache = DataCache(MainMemory())
        for zone, offset, is_write in sequence:
            address = ZONE_BASE[zone] + offset
            cache.access(address, zone, is_write)
            assert cache.access(address, zone, False) == 0

    @given(accesses)
    @settings(max_examples=40, deadline=None)
    def test_sectioned_never_misses_more_than_plain(self, sequence):
        """Zone sectioning is a partitioning: within the same traffic it
        can only remove inter-zone conflicts, never add misses beyond
        the plain cache's on per-zone-disjoint index sets.  Compare
        totals: the sectioned cache's misses are bounded by plain's
        plus the capacity effect of the smaller sections; for the small
        windows used here sections always win or tie."""
        sectioned = DataCache(MainMemory(), sectioned=True)
        plain = DataCache(MainMemory(), sectioned=False)
        for zone, offset, is_write in sequence:
            address = ZONE_BASE[zone] + offset
            sectioned.access(address, zone, is_write)
            plain.access(address, zone, is_write)
        assert sectioned.stats.misses <= plain.stats.misses \
            + sectioned.stats.accesses * 0  # exact: windows < 1K words

    @given(accesses)
    @settings(max_examples=40, deadline=None)
    def test_write_back_conservation(self, sequence):
        """Every memory write from a copy-back cache corresponds to one
        dirty eviction (flush at the end accounts the remainder)."""
        memory = MainMemory()
        cache = DataCache(memory)
        for zone, offset, is_write in sequence:
            cache.access(ZONE_BASE[zone] + offset, zone, is_write)
        cache.flush()
        writes_issued = sum(1 for z, o, w in sequence if w)
        # Each written line is flushed at most once per period it was
        # dirty; never more memory writes than cache write accesses.
        assert memory.writes <= writes_issued


class TestCodeCacheProperties:
    @given(st.lists(st.integers(min_value=0, max_value=40000),
                    max_size=150))
    @settings(max_examples=50, deadline=None)
    def test_fetch_then_refetch_hits(self, addresses):
        cache = CodeCache(MainMemory())
        for address in addresses:
            cache.fetch(address)
            assert cache.fetch(address) == 0


class TestStoreProperties:
    @given(st.dictionaries(st.integers(min_value=0, max_value=100000),
                           st.integers(-1000, 1000), max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_store_is_a_map(self, contents):
        store = DataStore()
        for address, value in contents.items():
            store.write(address, make_int(value))
        for address, value in contents.items():
            assert store.read(address) == make_int(value)


class TestMMUProperties:
    @given(st.lists(st.integers(min_value=0, max_value=(1 << 28) - 1),
                    max_size=80))
    @settings(max_examples=40, deadline=None)
    def test_translation_is_a_bijection_per_page(self, addresses):
        mmu = MMU()
        seen = {}
        for address in addresses:
            physical, _ = mmu.translate(address, is_write=False)
            page = address >> 14
            frame = physical >> 14
            # Same virtual page always maps to the same frame...
            assert seen.setdefault(page, frame) == frame
            # ...and the in-page offset is preserved.
            assert physical & 0x3FFF == address & 0x3FFF
        # Distinct pages get distinct frames.
        frames = list(seen.values())
        assert len(frames) == len(set(frames))
