"""Unit tests for clause analysis: chunks, permanents, trimming."""

from repro.compiler.allocate import analyze_clause
from repro.compiler.normalize import normalize_program
from repro.prolog.parser import parse_program


def analyze(text):
    program = normalize_program(parse_program(text))
    return analyze_clause(program.clauses[0])


class TestChunks:
    def test_fact_is_one_chunk(self):
        analysis = analyze("f(a).")
        assert analysis.chunk_count == 1

    def test_calls_end_chunks(self):
        analysis = analyze("f :- a, b, c.")
        assert analysis.goal_chunks == [0, 1, 2]
        assert analysis.chunk_count == 3

    def test_inline_goals_do_not_end_chunks(self):
        analysis = analyze("f(X, Y) :- X > 0, Y is X + 1, g(Y), h(Y).")
        assert analysis.goal_chunks == [0, 0, 0, 1]


class TestPermanents:
    def test_single_chunk_vars_are_temporary(self):
        analysis = analyze("f(X, Y) :- g(X, Y).")
        assert not analysis.permanent

    def test_cross_chunk_var_is_permanent(self):
        analysis = analyze("f(X) :- g(X), h(X).")
        assert "X" in analysis.permanent

    def test_head_only_var_is_temporary(self):
        analysis = analyze("f(X, X).")
        assert not analysis.permanent

    def test_head_plus_first_call_share_a_chunk(self):
        # B occurs only in the head and the first call goal — one
        # chunk, so it stays temporary despite two occurrences.
        analysis = analyze("f(A, B) :- g(A, B), h(A), i(A).")
        assert "B" not in analysis.permanent
        assert "A" in analysis.permanent

    def test_trimming_order_die_last_gets_y0(self):
        # A lives to the last goal, B dies after h.
        analysis = analyze("f(A, B) :- g(A, B), h(B), i(A).")
        assert analysis.permanent["A"] == 0
        assert analysis.permanent["B"] == 1

    def test_nperms_shrinks_after_last_use(self):
        analysis = analyze("f(A, B) :- g(A, B), h(B), i(A).")
        assert analysis.live_permanents_after_chunk(0) == 2
        assert analysis.live_permanents_after_chunk(1) == 1
        assert analysis.live_permanents_after_chunk(2) == 0

    def test_void_variables_detected(self):
        analysis = analyze("f(X, _Y).")
        assert analysis.is_void("_Y")
        assert analysis.is_void("X")


class TestEnvironment:
    def test_fact_needs_no_environment(self):
        assert not analyze("f(a).").needs_environment

    def test_chain_rule_needs_no_environment(self):
        # Single call in last position: last-call optimisation.
        assert not analyze("f(X) :- g(X).").needs_environment

    def test_two_calls_need_environment(self):
        assert analyze("f :- a, b.").needs_environment

    def test_inline_after_call_needs_environment(self):
        assert analyze("f(X) :- g(X), X > 1.").needs_environment

    def test_guard_only_clause_needs_no_environment(self):
        assert not analyze("max(X, Y, X) :- X >= Y.").needs_environment


class TestCutSlot:
    def test_neck_cut_needs_no_slot(self):
        analysis = analyze("f(X) :- !, g(X).")
        assert analysis.cut_slot is None

    def test_cut_after_call_needs_slot(self):
        analysis = analyze("f(X) :- g(X), !, h(X).")
        assert analysis.cut_slot is not None
        assert analysis.needs_environment

    def test_cut_slot_above_permanents(self):
        analysis = analyze("f(X) :- g(X), !, h(X).")
        assert analysis.cut_slot == len(analysis.permanent)


class TestGuard:
    def test_leading_comparisons_are_guard(self):
        analysis = analyze("f(X, Y) :- X > Y, X < 10, g(X).")
        assert analysis.guard_length == 2

    def test_is_not_in_guard(self):
        # is/2 binds, so it must run after the neck.
        analysis = analyze("f(X, Y) :- Y is X + 1, g(Y).")
        assert analysis.guard_length == 0

    def test_guard_stops_at_first_non_test(self):
        analysis = analyze("f(X) :- X > 0, g(X), X < 9.")
        assert analysis.guard_length == 1
